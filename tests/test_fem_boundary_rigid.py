"""Tests for load curves, boundary conditions, DOF management, rigid
bodies/joints, contact projection, and post-processing."""

import numpy as np
import pytest

from repro.fem import (
    FEModel,
    FixedBC,
    LinearElastic,
    LoadCurve,
    NodeSurfaceContact,
    PressureLoad,
    RigidBody,
    RigidJoint,
    box_hex,
    constant,
    ramp,
    sinusoid,
    solve_model,
    step_after,
)
from repro.fem.dofs import DofManager, PHYSICS_FIELDS
from repro.fem.postprocess import (
    element_stresses,
    hydrostatic,
    max_principal,
    stress_summary,
    von_mises,
)


class TestLoadCurves:
    def test_interpolation(self):
        lc = LoadCurve([0.0, 1.0, 2.0], [0.0, 1.0, 0.0])
        assert lc(0.5) == 0.5
        assert lc(1.5) == 0.5

    def test_clamping(self):
        lc = ramp(1.0, 2.0)
        assert lc(-1.0) == 0.0
        assert lc(5.0) == 2.0

    def test_monotone_times_required(self):
        with pytest.raises(ValueError):
            LoadCurve([1.0, 0.0], [0.0, 1.0])

    def test_step_after(self):
        lc = step_after(0.5, value=2.0, rise=0.1)
        assert lc(0.4) == 0.0
        assert lc(0.7) == 2.0

    def test_sinusoid_periodicity(self):
        lc = sinusoid(period=1.0, amplitude=1.0)
        assert np.isclose(lc(0.25), 1.0, atol=1e-2)

    def test_scaled(self):
        assert constant(2.0).scaled(3.0)(0.0) == 6.0

    def test_knots_roundtrip(self):
        lc = LoadCurve([0.0, 1.0], [0.5, 1.5], name="k")
        assert lc.knots() == [(0.0, 0.5), (1.0, 1.5)]


class TestDofManager:
    def test_physics_field_sets(self):
        assert PHYSICS_FIELDS["solid"] == ("ux", "uy", "uz")
        assert PHYSICS_FIELDS["biphasic"][-1] == "p"
        assert PHYSICS_FIELDS["fluid"][-1] == "ef"

    def test_numbering_skips_fixed(self):
        dm = DofManager(3)
        dm.activate([0, 1, 2], ("ux",))
        dm.fix([1], ("ux",))
        assert dm.finalize() == 2
        assert dm.eq(1, "ux") == -1
        assert dm.eq(0, "ux") == 0
        assert dm.eq(2, "ux") == 1

    def test_inactive_fields_have_no_equation(self):
        dm = DofManager(2)
        dm.activate([0], ("ux",))
        dm.finalize()
        assert dm.eq(0, "p") == -1

    def test_eqs_for_node_major_ordering(self):
        dm = DofManager(2)
        dm.activate([0, 1], ("ux", "uy"))
        dm.finalize()
        eqs = dm.eqs_for([0, 1], ("ux", "uy"))
        assert list(eqs) == [0, 1, 2, 3]

    def test_unknown_field(self):
        dm = DofManager(1)
        with pytest.raises(KeyError):
            dm.activate([0], ("warp",))

    def test_finalize_required(self):
        dm = DofManager(1)
        with pytest.raises(RuntimeError):
            dm.eq(0, "ux")


class TestBoundaryObjects:
    def test_fixed_bc_requires_fields(self):
        with pytest.raises(ValueError):
            FixedBC([0], ())

    def test_pressure_load_quad_only(self):
        with pytest.raises(ValueError):
            PressureLoad([(0, 1, 2)], 1.0)

    def test_pressure_field_prefix(self):
        load = PressureLoad([(0, 1, 2, 3)], 1.0, field_prefix="v")
        assert load.fields == ("vx", "vy", "vz")
        with pytest.raises(ValueError):
            PressureLoad([(0, 1, 2, 3)], 1.0, field_prefix="w")

    def test_value_at_follows_curve(self):
        load = PressureLoad([(0, 1, 2, 3)], 2.0, ramp())
        assert load.value_at(0.5) == 1.0


class TestRigidKinematics:
    def test_node_jacobian_translation(self):
        body = RigidBody("b", [], center=(0, 0, 0))
        body.center = np.zeros(3)
        J = body.node_jacobian(np.array([1.0, 0.0, 0.0]))
        q = np.array([0.1, 0.2, 0.3, 0.0, 0.0, 0.0])
        assert np.allclose(J @ q, [0.1, 0.2, 0.3])

    def test_node_jacobian_rotation(self):
        body = RigidBody("b", [], center=(0, 0, 0))
        body.center = np.zeros(3)
        # Small rotation about z moves +x points toward +y.
        q = np.array([0.0, 0.0, 0.0, 0.0, 0.0, 0.01])
        u = body.displacement(np.array([1.0, 0.0, 0.0]), q)
        assert np.isclose(u[1], 0.01)
        assert abs(u[0]) < 1e-12

    def test_prescribe_validation(self):
        body = RigidBody("b", [])
        with pytest.raises(ValueError):
            body.prescribe("warp", 1.0)

    def test_spherical_joint_rows(self):
        a = RigidBody("a", [], center=(0, 0, 0))
        a.center = np.zeros(3)
        j = RigidJoint("j", a, None, point=(1, 0, 0), kind="spherical")
        C = j.constraint_rows()
        assert C.shape == (3, 12)

    def test_revolute_adds_rotation_rows(self):
        a = RigidBody("a", [], center=(0, 0, 0))
        a.center = np.zeros(3)
        b = RigidBody("b", [], center=(2, 0, 0))
        b.center = np.array([2.0, 0, 0])
        j = RigidJoint("j", a, b, point=(1, 0, 0), axis=(0, 0, 1),
                       kind="revolute")
        C = j.constraint_rows()
        assert C.shape == (5, 12)
        # Rotations about the joint axis (rz) must be unconstrained.
        q_spin = np.zeros(12)
        q_spin[5] = 1.0   # body a rz
        q_spin[11] = 1.0  # body b rz (equal spin)
        # translation at the point from a's spin must match b's...
        # for pure equal spin about the axis through the point the
        # rotational constraint rows are exactly zero:
        assert np.allclose(C[3:] @ q_spin, 0.0)

    def test_unknown_joint_kind(self):
        a = RigidBody("a", [])
        with pytest.raises(ValueError):
            RigidJoint("j", a, kind="prismatic")


class TestContactProjection:
    def _flat_face(self):
        return [(0, 1, 2, 3)]

    def test_projection_inside_detects_gap(self):
        coords = np.array([
            [0.0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],  # master face
            [0.5, 0.5, -0.1],                              # slave below
        ])
        u = np.zeros((5, 3))
        c = NodeSurfaceContact([4], self._flat_face(), penalty=10.0,
                               search_radius=2.0)
        forces, stiffness, active, candidates = c.evaluate(coords, u)
        assert active == 1
        assert candidates >= 1
        # Restoring force on the slave points up (+z gradient negative).
        assert forces[4][2] < 0  # dE/du is negative -> force pushes +z

    def test_projection_outside_footprint_ignored(self):
        coords = np.array([
            [0.0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [3.0, 3.0, -0.1],
        ])
        u = np.zeros((5, 3))
        c = NodeSurfaceContact([4], self._flat_face(), penalty=10.0,
                               search_radius=10.0)
        _, _, active, _ = c.evaluate(coords, u)
        assert active == 0

    def test_positive_gap_inactive(self):
        coords = np.array([
            [0.0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [0.5, 0.5, 0.2],
        ])
        u = np.zeros((5, 3))
        c = NodeSurfaceContact([4], self._flat_face(), penalty=10.0,
                               search_radius=2.0)
        _, _, active, _ = c.evaluate(coords, u)
        assert active == 0

    def test_hessian_blocks_symmetric_pairs(self):
        coords = np.array([
            [0.0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [0.5, 0.5, -0.05],
        ])
        u = np.zeros((5, 3))
        c = NodeSurfaceContact([4], self._flat_face(), penalty=10.0,
                               search_radius=2.0)
        _, stiffness, _, _ = c.evaluate(coords, u)
        for (i, j), block in stiffness.items():
            assert np.allclose(block, stiffness[(j, i)].T)


class TestPostprocess:
    def _solved(self):
        mesh = box_hex(2, 2, 2)
        model = FEModel(mesh)
        model.add_material(LinearElastic(E=1.0, nu=0.3, name="mat"))
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        model.prescribe(mesh.nodes_on_plane(2, 1.0), "uz", -0.05, ramp())
        model.finalize()
        values, _ = solve_model(model)
        return model, values

    def test_compression_gives_negative_pressure(self):
        model, values = self._solved()
        sig = element_stresses(model, values)["box"]
        assert hydrostatic(sig).mean() < 0

    def test_von_mises_nonnegative(self):
        model, values = self._solved()
        sig = element_stresses(model, values)["box"]
        assert (von_mises(sig) >= 0).all()

    def test_von_mises_uniaxial(self):
        sig = np.array([[2.0, 0, 0, 0, 0, 0]])
        assert np.isclose(von_mises(sig)[0], 2.0)

    def test_max_principal_diag(self):
        sig = np.array([[1.0, 3.0, 2.0, 0, 0, 0]])
        assert np.isclose(max_principal(sig)[0], 3.0)

    def test_summary_rows(self):
        model, values = self._solved()
        rows = stress_summary(model, values)
        assert rows and rows[0]["peak_von_mises"] > 0
