"""Tests of global assembly internals, state handling, and symmetry."""

import numpy as np
import pytest

from repro.fem import (
    BiphasicMaterial,
    FEModel,
    LinearElastic,
    PronyViscoelastic,
    StepSettings,
    box_hex,
    external_force,
    ramp,
    solve_model,
)
from repro.fem.assembly import StateStore, assemble_system
from repro.fem.solver.linear import is_numerically_symmetric


def _simple_model(material=None, physics="solid"):
    mesh = box_hex(2, 2, 2)
    if physics != "solid":
        mesh.blocks[0].physics = physics
    model = FEModel(mesh)
    model.add_material(material or LinearElastic(E=1.0, nu=0.3, name="mat"))
    model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
    model.finalize()
    return model


class TestAssembly:
    def test_solid_tangent_symmetric(self):
        model = _simple_model()
        values = model.new_field_array()
        K, f, _, _ = assemble_system(
            model, values, values.copy(), model.new_body_vector(),
            StateStore(model), 0.5, 0.5,
        )
        assert is_numerically_symmetric(K)

    def test_zero_displacement_zero_residual(self):
        model = _simple_model()
        values = model.new_field_array()
        _, f, _, _ = assemble_system(
            model, values, values.copy(), model.new_body_vector(),
            StateStore(model), 0.5, 0.5,
        )
        assert np.allclose(f, 0.0, atol=1e-12)

    def test_biphasic_tangent_nonsymmetric(self):
        model = _simple_model(
            BiphasicMaterial(LinearElastic(E=1.0, nu=0.2), 1.0, name="mat"),
            physics="biphasic",
        )
        values = model.new_field_array()
        rng = np.random.default_rng(0)
        values[:, :4] = rng.random(values[:, :4].shape) * 0.01
        K, _, _, report = assemble_system(
            model, values, model.new_field_array(), model.new_body_vector(),
            StateStore(model), 0.5, 0.5,
        )
        assert report.nonsymmetric
        assert not is_numerically_symmetric(K)

    def test_report_counts_material_calls(self):
        model = _simple_model()
        values = model.new_field_array()
        _, _, _, report = assemble_system(
            model, values, values.copy(), model.new_body_vector(),
            StateStore(model), 0.5, 0.5,
        )
        assert report.material_calls["LinearElastic"] == 8 * 8  # elems x gp

    def test_matrix_dimension_matches_neq(self):
        model = _simple_model()
        values = model.new_field_array()
        K, _, _, _ = assemble_system(
            model, values, values.copy(), model.new_body_vector(),
            StateStore(model), 0.5, 0.5,
        )
        assert K.n == model.neq


class TestStateStore:
    def test_stateless_material_has_no_store(self):
        model = _simple_model()
        store = StateStore(model)
        assert store.get("box", 0) == {}

    def test_pending_commit_cycle(self):
        mat = PronyViscoelastic(LinearElastic(E=1.0, nu=0.3),
                                g=(0.3,), tau=(0.5,), name="mat")
        model = _simple_model(mat)
        store = StateStore(model)
        before = store.clone_element_states()
        values = model.new_field_array()
        values[:, 2] = -0.01 * model.mesh.nodes[:, 2]
        _, _, pending, _ = assemble_system(
            model, values, model.new_field_array(),
            model.new_body_vector(), store, 0.5, 0.5,
        )
        # Assembly alone must not mutate committed state.
        after = store.clone_element_states()
        for name in before:
            for e, (b, a) in enumerate(zip(before[name], after[name])):
                for key in b:
                    assert np.array_equal(b[key], a[key]), (name, e, key)
        store.commit(pending)
        committed = store.clone_element_states()
        moved = any(
            not np.array_equal(b[key], c[key])
            for name in before
            for b, c in zip(before[name], committed[name])
            for key in b
        )
        assert moved  # commit actually advanced the history

    def test_history_affects_later_steps(self):
        """Viscoelastic model: two steps give different reaction than one."""
        mat = PronyViscoelastic(LinearElastic(E=1.0, nu=0.3),
                                g=(0.5,), tau=(0.2,), name="mat")
        mesh = box_hex(2, 2, 2)
        model = FEModel(mesh)
        model.add_material(mat)
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        model.prescribe(mesh.nodes_on_plane(2, 1.0), "uz", -0.05, ramp())
        model.step = StepSettings(duration=2.0, n_steps=4)
        model.finalize()
        values, record = solve_model(model)
        assert record.converged
        assert record.total_newton_iterations >= 4


class TestExternalForce:
    def test_nodal_load_scaling_with_curve(self):
        mesh = box_hex(1, 1, 1)
        model = FEModel(mesh)
        model.add_material(LinearElastic(name="mat"))
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        top = mesh.nodes_on_plane(2, 1.0)
        model.add_nodal_load(top, "uz", -1.0, ramp())
        model.finalize()
        f_half = external_force(model, 0.5)
        f_full = external_force(model, 1.0)
        assert np.isclose(np.abs(f_half).sum() * 2, np.abs(f_full).sum())

    def test_pressure_on_top_face_pushes_down(self):
        mesh = box_hex(1, 1, 1)
        model = FEModel(mesh)
        model.add_material(LinearElastic(name="mat"))
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        top_faces = [f for f in mesh.boundary_faces()
                     if all(abs(mesh.nodes[n][2] - 1.0) < 1e-9 for n in f)]
        model.add_pressure(top_faces, 1.0)
        model.finalize()
        f = external_force(model, 1.0)
        # Sum of vertical components equals -p * area = -1.
        total_z = sum(
            f[model.dofs.eq(int(n), "uz")]
            for n in mesh.nodes_on_plane(2, 1.0)
            if model.dofs.eq(int(n), "uz") >= 0
        )
        assert np.isclose(total_z, -1.0)

    def test_body_force_total_weight(self):
        mesh = box_hex(2, 2, 2)
        model = FEModel(mesh)
        model.add_material(LinearElastic(density=3.0, name="mat"))
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        model.add_body_force("box", (0, 0, -1), 2.0)
        model.finalize()
        f = external_force(model, 1.0)
        # Total = rho * g * V minus the share carried by fixed nodes.
        assert f.sum() < 0
        assert abs(f.sum()) <= 3.0 * 2.0 * 1.0 + 1e-9
