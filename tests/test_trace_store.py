"""Persistent trace store: round-trips, invalidation, runner caching."""

import os

import numpy as np
import pytest

from repro.core import runner as runner_mod
from repro.core.runner import Runner
from repro.trace import TraceBuilder, store as trace_store_mod
from repro.trace.store import TRACE_FORMAT_VERSION, TraceStore

COLUMNS = ("kind", "addr", "pc", "taken", "dep1", "dep2", "func")


def _make_trace(n=500):
    tb = TraceBuilder(code_bloat=1.2, replicas=3)
    tb.set_function("blas_axpy")
    r = tb.region("v", n)
    for i in range(n // 4):
        tb.set_replica(i)
        lx = tb.load(0, r, i)
        s = tb.fp_add(1, dep1=tb.dep_to(lx))
        tb.store(2, r, i, dep1=tb.dep_to(s))
        tb.branch(3, taken=(i % 8 != 7))
    return tb.build()


def _assert_traces_equal(a, b):
    assert len(a) == len(b)
    for c in COLUMNS:
        got, want = getattr(a, c), getattr(b, c)
        assert np.array_equal(got, want), f"column {c} differs"
        assert got.dtype == want.dtype, f"column {c} dtype differs"


class TestTraceStore:
    def test_round_trip_bit_equality(self, tmp_path):
        store = TraceStore(tmp_path)
        trace = _make_trace()
        store.save("w", "tiny", 1234, trace)
        for mmap in (True, False):
            loaded = store.load("w", "tiny", 1234, mmap=mmap)
            assert loaded is not None
            _assert_traces_equal(loaded, trace)

    def test_mmap_load_is_file_backed(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save("w", "tiny", 99, _make_trace())
        loaded = store.load("w", "tiny", 99)
        # The zero-copy path maps columns straight out of the archive.
        assert isinstance(loaded.addr.base, np.memmap) or isinstance(
            loaded.addr, np.memmap)

    def test_miss_returns_none(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.load("nope", "tiny", 1) is None
        assert not store.contains("nope", "tiny", 1)

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        store = TraceStore(tmp_path)
        trace = _make_trace()
        store.save("w", "tiny", 7, trace)
        assert store.load("w", "tiny", 7) is not None
        monkeypatch.setattr(trace_store_mod, "TRACE_FORMAT_VERSION",
                            TRACE_FORMAT_VERSION + 1)
        # Key and embedded meta version both guard the format.
        assert store.load("w", "tiny", 7) is None
        assert not store.contains("w", "tiny", 7)

    def test_corrupt_file_is_a_miss(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save("w", "tiny", 7, _make_trace())
        with open(store.path("w", "tiny", 7), "wb") as fh:
            fh.write(b"not a zip archive")
        assert store.load("w", "tiny", 7) is None

    def test_truncated_archive_quarantined_then_resynthesized(
            self, tmp_path, monkeypatch, capsys):
        """Regression: a killed writer / partial pull leaves a truncated
        ``.npz``.  It must be quarantined and treated as a miss — never
        raise mid-sweep or shadow the rebuilt archive."""
        from repro import env as env_mod

        env_mod._reset_warnings()
        store = TraceStore(tmp_path)
        trace = _make_trace()
        store.save("w", "tiny", 7, trace)
        path = store.path("w", "tiny", 7)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)

        assert store.load("w", "tiny", 7) is None
        # Quarantined aside, not deleted: the key no longer hits, the
        # damaged bytes stay inspectable, and the event was reported.
        assert not os.path.exists(path)
        assert os.path.exists(path + ".corrupt")
        assert not store.contains("w", "tiny", 7)
        assert "quarantined corrupt trace archive" in capsys.readouterr().err
        assert store.stats()["quarantined"] == 1

        # The runner path re-synthesizes straight through the miss and
        # repopulates the key in place.
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        runner = Runner(use_disk_cache=False)
        rebuilt, record = runner.trace_for("te01", "tiny", 4000)
        assert record is not None and len(rebuilt) > 0

        store.save("w", "tiny", 7, trace)
        reloaded = store.load("w", "tiny", 7)
        assert reloaded is not None
        _assert_traces_equal(reloaded, trace)

    def test_truncated_mid_sweep_falls_back_to_synthesis(self, tmp_path,
                                                         monkeypatch):
        # End to end: the trace the sweep needs is truncated on disk;
        # trace_for must fall back to a clean synthesis.
        from repro import env as env_mod

        env_mod._reset_warnings()
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        built = Runner(use_disk_cache=False)
        t1, _ = built.trace_for("te01", "tiny", 4000)
        store = TraceStore(create=False)
        path = store.path("te01", "tiny", 4000)
        with open(path, "r+b") as fh:
            fh.truncate(os.path.getsize(path) * 3 // 4)

        fresh = Runner(use_disk_cache=False)
        t2, record = fresh.trace_for("te01", "tiny", 4000)
        assert record is not None  # a real synthesis, not a store hit
        _assert_traces_equal(t1, t2)
        # The rebuild repopulated the store for the next process.
        assert store.contains("te01", "tiny", 4000)
        again, record2 = Runner(use_disk_cache=False).trace_for(
            "te01", "tiny", 4000)
        assert record2 is None
        _assert_traces_equal(t1, again)

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save("w", "tiny", 7, _make_trace())
        leftovers = [p for p in tmp_path.iterdir()
                     if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_size_cap_evicts_oldest(self, tmp_path):
        store = TraceStore(tmp_path, max_bytes=1)  # everything over cap
        store.save("a", "tiny", 1, _make_trace())
        store.save("b", "tiny", 1, _make_trace())
        # The newest entry is kept even when the cap is absurdly small.
        assert store.contains("b", "tiny", 1)
        assert not store.contains("a", "tiny", 1)

    def test_stats_and_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.save("a", "tiny", 1, _make_trace())
        s = store.stats()
        assert s["entries"] == 1 and s["total_bytes"] > 0
        assert store.clear() == 1
        assert store.stats()["entries"] == 0


class TestRunnerTraceCaching:
    def test_runner_saves_then_loads_from_store(self, tmp_path,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        built = Runner(use_disk_cache=False)
        t1, record = built.trace_for("te01", "tiny", 4000)
        assert record is not None  # fresh synthesis keeps the record
        assert TraceStore(create=False).contains("te01", "tiny", 4000)

        fresh = Runner(use_disk_cache=False)
        t2, record2 = fresh.trace_for("te01", "tiny", 4000)
        assert record2 is None  # store hit: no solve happened
        _assert_traces_equal(t1, t2)

    def test_env_kill_switch_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_TRACE_STORE", "0")
        runner = Runner(use_disk_cache=False)
        runner.trace_for("te01", "tiny", 4000)
        assert list(tmp_path.iterdir()) == []

    def test_trace_memo_lru_is_bounded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        runner = Runner(use_disk_cache=False, trace_memo=2)
        for budget in (3000, 4000, 5000):
            runner.trace_for("te01", "tiny", budget)
        assert len(runner._traces) == 2
        # Evicted budgets reload from the store, not a fresh solve.
        t, record = runner.trace_for("te01", "tiny", 3000)
        assert record is None and len(t) > 0

    def test_prebuilt_traces_bypass_memo_and_store(self, monkeypatch):
        sentinel = (_make_trace(), None)
        monkeypatch.setitem(runner_mod.PREBUILT_TRACES,
                            ("w", "tiny", 123), sentinel)
        runner = Runner(use_disk_cache=False)
        assert runner.trace_for("w", "tiny", 123) is sentinel
        assert ("w", "tiny", 123) not in runner._traces


class TestPoolPrebuild:
    def test_workers_use_parents_prebuilt_traces(self, tmp_path,
                                                 monkeypatch):
        import multiprocessing

        if not ("fork" in multiprocessing.get_all_start_methods()):
            pytest.skip("fork start method unavailable")
        from repro.engine import JobSpec, run_jobs
        from repro.engine.pool import prebuild_traces
        from repro.trace import solvertrace
        from repro.uarch.config import gem5_baseline

        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "t"))
        monkeypatch.setenv("REPRO_TRACE_STORE", "0")  # COW is the only path
        jobs = [JobSpec("te01", gem5_baseline(freq_ghz=f), label=f,
                        scale="tiny", budget=4000) for f in (2.0, 3.0)]
        prebuild_traces(jobs)
        assert ("te01", "tiny", 4000) in runner_mod.PREBUILT_TRACES

        # Poison synthesis: any rebuild — parent or worker — would blow
        # up.  Forked workers inherit both the poison and the prebuilt
        # trace set, so success proves zero-copy serving.
        def _boom(*a, **kw):
            raise AssertionError("trace was rebuilt instead of inherited")

        monkeypatch.setattr(solvertrace, "workload_trace", _boom)
        monkeypatch.setattr("repro.trace.workload_trace", _boom)
        monkeypatch.setattr("repro.core.runner.workload_trace", _boom)
        stats = run_jobs(jobs, workers=2,
                         runner=Runner(cache_dir=tmp_path / "r"))
        assert len(stats) == 2 and all(s.cycles > 0 for s in stats)
        # run_jobs drops the parent's set when the batch completes.
        assert runner_mod.PREBUILT_TRACES == {}
