"""Tests for the workload registry, builders, and .feb serialization."""

import numpy as np
import pytest

from repro.fem import feb_bytes, read_feb_geometry, solve_model, write_feb
from repro.workloads import (
    REGISTRY,
    TABLE1_PAPER_RANGES,
    TraceHints,
    build,
    categories,
    gem5_workloads,
    names,
    vtune_workloads,
)


class TestRegistry:
    def test_all_categories_populated(self):
        cats = categories()
        for label in TABLE1_PAPER_RANGES:
            assert cats[label], f"category {label} has no workloads"

    def test_vtune_set_matches_paper(self):
        assert [s.name for s in vtune_workloads()] == [
            "bp07", "bp08", "bp09", "fl33", "fl34",
            "ma26", "ma27", "ma28", "ma29", "ma30", "ma31", "eye",
        ]

    def test_gem5_set_matches_paper(self):
        assert [s.name for s in gem5_workloads()] == [
            "ar", "co", "dm", "ma", "rj", "tu",
        ]

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            build("nope")

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            build("ma", scale="huge")

    def test_hints_validation(self):
        with pytest.raises(ValueError):
            TraceHints(code_footprint="giant")
        with pytest.raises(ValueError):
            TraceHints(spin_wait_weight=1.5)
        with pytest.raises(ValueError):
            TraceHints(branch_profile="chaotic")

    def test_every_workload_builds_tiny(self):
        for name in names():
            model = build(name, "tiny")
            assert model.neq > 0, name

    def test_bp_group_varies_anisotropy_only(self):
        models = {n: build(n, "tiny") for n in ("bp07", "bp08", "bp09")}
        sizes = {n: m.mesh.nelem for n, m in models.items()}
        assert len(set(sizes.values())) == 1  # identical meshes
        ratios = [
            m.materials["tissue"].anisotropy_ratio for m in models.values()
        ]
        assert len(set(round(r, 3) for r in ratios)) == 3

    def test_ma_group_identical_mesh(self):
        meshes = {build(n, "tiny").mesh.nelem
                  for n in ("ma26", "ma28", "ma31")}
        assert len(meshes) == 1

    def test_eye_is_largest_input(self):
        eye_size = feb_bytes(build("eye", "tiny"))
        others = [feb_bytes(build(n, "tiny"))
                  for n in ("ma26", "bp07", "te01")]
        assert eye_size > max(others)

    def test_fl33_steady_fl34_transient(self):
        m33 = build("fl33", "tiny")
        m34 = build("fl34", "tiny")
        assert m33.materials["fluid"].steady
        assert not m34.materials["fluid"].steady
        assert m34.materials["fluid"].convective


class TestWorkloadSolves:
    @pytest.mark.parametrize("name", ["bp07", "fl34", "ma28", "tu", "rj"])
    def test_representative_solves(self, name):
        model = build(name, "tiny")
        _, record = solve_model(model)
        assert record.converged
        assert record.matrix is not None
        assert record.nnz > 0

    def test_eye_tiny_solves(self):
        _, record = solve_model(build("eye", "tiny"))
        assert record.converged


class TestFebFile:
    def test_roundtrip_geometry(self):
        model = build("ma26", "tiny")
        text = write_feb(model)
        mesh = read_feb_geometry(text)
        assert mesh.nnodes == model.mesh.nnodes
        assert mesh.nelem == model.mesh.nelem
        assert np.allclose(mesh.nodes, model.mesh.nodes)

    def test_size_grows_with_scale(self):
        small = feb_bytes(build("te01", "tiny"))
        big = feb_bytes(build("te01", "default"))
        assert big > small

    def test_file_contains_sections(self):
        text = write_feb(build("bp07", "tiny"))
        for section in ("<Material>", "<Mesh>", "<Boundary>", "<LoadData>"):
            assert section in text

    def test_write_to_disk(self, tmp_path):
        path = tmp_path / "model.feb"
        write_feb(build("ma26", "tiny"), str(path))
        assert path.stat().st_size > 1000

    def test_category_size_ordering_tracks_paper(self):
        """The eye must dominate; MA tiny must be among the smallest."""
        sizes = {}
        for name in ("eye", "ma26", "mu01", "fl33", "bp07"):
            sizes[name] = feb_bytes(build(name, "tiny"))
        assert sizes["eye"] == max(sizes.values())
        assert sizes["ma26"] <= sizes["fl33"]
