"""Fault injection, supervised-pool crash safety, and remote re-probe.

The CI ``chaos`` job runs this file under several ``REPRO_CHAOS_SEED``
values; every test must hold for *any* seed (the seed only reshuffles
which tokens fire, never the invariants asserted here).
"""

import multiprocessing
import os
import socket
import threading
import time

import pytest

from repro import env as env_mod
from repro import faults, telemetry
from repro.core.runner import Runner
from repro.core.sweeps import GEM5_WORKLOADS, l2_sweep
from repro.engine import (JobFailure, JobSpec, ResultStore, expand_grid,
                          run_jobs)
from repro.store import remote as remote_mod
from repro.store.remote import RemoteStore
from repro.store.server import ArtifactServer
from repro.trace.store import TraceStore
from repro.uarch.config import gem5_baseline

_WORKLOADS = ("ar", "co")
_FAST = dict(scale="tiny", budget=4000)

#: The chaos matrix seed (CI varies it); defaults to the paper run's 7.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable")


@pytest.fixture(autouse=True)
def _fresh_state(monkeypatch):
    """Each test gets a clean harness, remote registry, warning slate."""
    monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
    faults.harness._reset()
    remote_mod._reset_registry()
    env_mod._reset_warnings()
    yield
    faults.harness._reset()
    remote_mod._reset_registry()
    env_mod._reset_warnings()


def _free_port():
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


@pytest.fixture()
def server(tmp_path):
    srv = ArtifactServer(root=str(tmp_path / "shared"), host="127.0.0.1",
                         port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
class TestHarness:
    def test_parse_spec_full(self):
        spec = faults.parse_spec("worker.exec:kill:0.1:7")
        assert (spec.site, spec.mode, spec.rate, spec.seed) == \
            ("worker.exec", "kill", 0.1, 7)
        assert spec.match is None
        spec = faults.parse_spec("remote.get:error:1:0:k1:0")
        assert spec.match == "k1:0"

    def test_parse_spec_rejects_garbage(self):
        for bad in ("worker.exec:kill", "nosite:kill:0.5",
                    "worker.exec:nomode:0.5", "worker.exec:kill:2",
                    "worker.exec:kill:0.5:notanint"):
            with pytest.raises(ValueError):
                faults.parse_spec(bad)

    def test_parse_faults_skips_bad_pieces(self, capsys):
        specs = faults.parse_faults(
            "worker.exec:kill:0.1:7, bogus, store.put:enospc:1")
        assert set(specs) == {"worker.exec", "store.put"}
        assert "ignoring invalid" in capsys.readouterr().err

    def test_firing_is_deterministic_and_rate_shaped(self):
        spec = faults.parse_spec(f"worker.exec:kill:0.1:{CHAOS_SEED}")
        draws = [spec.fires(f"job{i}:0") for i in range(2000)]
        again = [spec.fires(f"job{i}:0") for i in range(2000)]
        assert draws == again
        assert 100 < sum(draws) < 320  # ~0.1 of 2000
        # A different seed reshuffles the decisions.
        other = faults.parse_spec(f"worker.exec:kill:0.1:{CHAOS_SEED + 1}")
        assert [other.fires(f"job{i}:0") for i in range(2000)] != draws

    def test_rate_extremes_and_match(self):
        never = faults.parse_spec("worker.exec:raise:0")
        always = faults.parse_spec("worker.exec:raise:1")
        assert not any(never.fires(f"t{i}") for i in range(50))
        assert all(always.fires(f"t{i}") for i in range(50))
        only = faults.parse_spec("worker.exec:raise:1:0:ar@")
        assert only.fires("ar@512:0") and not only.fires("co@512:0")

    def test_active_tracks_env_changes(self, monkeypatch):
        assert faults.active() == {}
        monkeypatch.setenv(faults.FAULTS_ENV, "store.put:enospc:1")
        assert set(faults.active()) == {"store.put"}
        monkeypatch.delenv(faults.FAULTS_ENV)
        assert faults.active() == {}

    def test_attempts_draw_independently(self):
        # The retry token must not replay the kill decision verbatim:
        # some token that fires at attempt 0 must survive attempt 1.
        spec = faults.parse_spec(f"worker.exec:kill:0.1:{CHAOS_SEED}")
        fired = [f"job{i}" for i in range(2000)
                 if spec.fires(f"job{i}:0")]
        assert fired  # rate test above guarantees this
        assert not all(spec.fires(f"{t}:1") for t in fired)

    def test_recovered_noops_when_unarmed(self):
        faults.recovered("worker.exec")
        assert faults.recovered_counts() == {}


# ----------------------------------------------------------------------
# Supervised pool
# ----------------------------------------------------------------------
@needs_fork
class TestSupervisedPool:
    def _jobs(self, tmp_path):
        cfgs = [(f, gem5_baseline(freq_ghz=f)) for f in (2.0, 3.0)]
        return (expand_grid(_WORKLOADS, cfgs, **_FAST),
                Runner(cache_dir=tmp_path / "cache"))

    def test_worker_exit_mid_batch_retries_on_fresh_pool(self, tmp_path,
                                                         monkeypatch):
        # Every job's *first* attempt dies via os._exit(1) in the
        # worker; every retry (fresh token) runs clean — the sweep must
        # still deliver all results, in order.
        monkeypatch.setenv(faults.FAULTS_ENV, "worker.exec:kill:1:0::0")
        jobs, runner = self._jobs(tmp_path)
        stats = run_jobs(jobs, workers=2, runner=runner)
        assert len(stats) == len(jobs)
        for job, st in zip(jobs, stats):
            assert not isinstance(st, JobFailure)
            assert st.freq_ghz == pytest.approx(job.config.freq_ghz)

    def test_sigkilled_worker_mid_batch_completes(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "worker.exec:sigkill:1:0::0")
        jobs, runner = self._jobs(tmp_path)
        stats = run_jobs(jobs, workers=2, runner=runner)
        assert all(not isinstance(st, JobFailure) for st in stats)
        assert len(stats) == len(jobs)

    def test_poison_job_quarantined_store_stays_consistent(self, tmp_path,
                                                           monkeypatch,
                                                           capsys):
        jobs, runner = self._jobs(tmp_path)
        poison = jobs[1]
        # Match on the job key alone (no attempt suffix): every attempt
        # of this one job raises; every other job is untouched.
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"worker.exec:raise:1:0:{poison.key()}")
        stats = run_jobs(jobs, workers=2, runner=runner)
        assert len(stats) == len(jobs)
        failure = stats[1]
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "InjectedFault"
        assert failure.attempts == 3  # default REPRO_JOB_RETRIES=2
        assert failure.as_dict()["workload"] == poison.workload
        assert "quarantined" in capsys.readouterr().err
        # The other three landed as stats and as store entries; the
        # poisoned key is absent — no torn manifest rows.
        assert all(not isinstance(st, JobFailure)
                   for i, st in enumerate(stats) if i != 1)
        store = ResultStore(tmp_path / "cache")
        assert store.get(poison.key()) is None
        for i, job in enumerate(jobs):
            if i != 1:
                assert store.get(job.key()) is not None

    def test_retries_zero_quarantines_first_failure(self, tmp_path,
                                                    monkeypatch):
        jobs, runner = self._jobs(tmp_path)
        monkeypatch.setenv("REPRO_JOB_RETRIES", "0")
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"worker.exec:raise:1:0:{jobs[0].key()}")
        stats = run_jobs(jobs, workers=2, runner=runner)
        assert isinstance(stats[0], JobFailure)
        assert stats[0].attempts == 1

    def test_hung_job_reaped_by_timeout(self, tmp_path, monkeypatch):
        # One job's first attempt hangs; REPRO_JOB_TIMEOUT reaps it and
        # the retry completes.  Innocent in-flight jobs are requeued
        # without losing an attempt.
        jobs, runner = self._jobs(tmp_path)
        monkeypatch.setenv("REPRO_JOB_TIMEOUT", "1")
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"worker.exec:hang:1:0:{jobs[0].key()}:0")
        t0 = time.monotonic()
        stats = run_jobs(jobs, workers=2, runner=runner)
        assert time.monotonic() - t0 < 60
        assert all(not isinstance(st, JobFailure) for st in stats)

    def test_serial_chaos_never_kills_the_parent(self, tmp_path,
                                                 monkeypatch):
        # The serial path executes in the parent: death modes must be
        # demoted to raise (then retried), not exit the test process.
        jobs, runner = self._jobs(tmp_path)
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"worker.exec:kill:1:0:{jobs[0].key()}:0")
        stats = run_jobs(jobs, workers=1, runner=runner)
        assert all(not isinstance(st, JobFailure) for st in stats)

    def test_chaos_l2_sweep_completes_full_grid(self, tmp_path,
                                                monkeypatch):
        # The acceptance proof: a 10% worker-kill rate across the full
        # gem5 L2 sweep still yields all 24 cells, zero quarantines.
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"worker.exec:kill:0.1:{CHAOS_SEED}")
        result = l2_sweep(workloads=GEM5_WORKLOADS, workers=4,
                          runner=Runner(cache_dir=tmp_path / "cache"),
                          full_result=True, **_FAST)
        assert len(result.cells) == len(GEM5_WORKLOADS) * 4
        assert result.failures == []

    def test_quarantine_surfaces_in_study_and_report(self, tmp_path,
                                                     monkeypatch, capsys):
        from repro.__main__ import main
        from repro.core.sweeps import study_for

        jdir = tmp_path / "journals"
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(jdir))
        plan = study_for("l2", workloads=_WORKLOADS, values=(512, 1024),
                         **_FAST)
        poison_key = plan.jobs(model="cycle")[0].key()
        monkeypatch.setenv(faults.FAULTS_ENV,
                           f"worker.exec:raise:1:0:{poison_key}")
        result = l2_sweep(workloads=_WORKLOADS, sizes_kb=(512, 1024),
                          workers=2,
                          runner=Runner(cache_dir=tmp_path / "cache"),
                          full_result=True, **_FAST)
        assert len(result.failures) == 1
        assert len(result.cells) == len(_WORKLOADS) * 2 - 1
        capsys.readouterr()
        assert main(["report", telemetry.latest_journal(str(jdir))]) == 0
        out = capsys.readouterr().out
        assert "quarantined failures (1)" in out
        assert "failures=1" in out


# ----------------------------------------------------------------------
# Remote store: backoff, re-probe, injected faults
# ----------------------------------------------------------------------
class TestRemoteResilience:
    def test_restarted_server_rediscovered_within_cooldown(self, tmp_path,
                                                           capsys):
        port = _free_port()
        url = f"http://127.0.0.1:{port}"
        r = RemoteStore(url, "results", timeout=2.0, retries=0,
                        cooldown=0.2)
        assert r.get_bytes("k") is None
        assert not r.available  # cooldown window open
        assert r.get_bytes("k") is None  # short-circuits, no request
        srv = ArtifactServer(root=str(tmp_path / "shared"),
                             host="127.0.0.1", port=port)
        threading.Thread(target=srv.serve_forever, daemon=True).start()
        try:
            time.sleep(0.25)  # one cooldown window
            assert r.available  # deadline passed: next op re-probes
            assert r.put_bytes("k", b"payload", wait=True)
            assert r.get_bytes("k") == b"payload"
            assert r._down_until is None
            assert "reachable again" in capsys.readouterr().err
        finally:
            srv.shutdown()
            srv.server_close()

    def test_transient_get_error_retried_and_recovered(self, server,
                                                       monkeypatch):
        r = RemoteStore(server.url, "results", retries=2)
        assert r.put_bytes("k1", b"data", wait=True)
        # Attempt 0 of every GET raises an injected transient error;
        # the in-request retry (attempt 1) succeeds without ever
        # opening an outage window.
        monkeypatch.setenv(faults.FAULTS_ENV, "remote.get:error:1:0::0")
        assert r.get_bytes("k1") == b"data"
        assert r.available and r._down_until is None
        assert r.counters["retries"] == 1
        assert faults.injected_counts()[("remote.get", "error")] == 1
        assert faults.recovered_counts()["remote.get"] == 1

    def test_corrupt_response_rejected_twice_is_a_miss(self, server,
                                                       monkeypatch,
                                                       capsys):
        r = RemoteStore(server.url, "results")
        assert r.put_bytes("k1", b"data", wait=True)
        monkeypatch.setenv(faults.FAULTS_ENV, "remote.get:corrupt:1")
        assert r.get_bytes("k1") is None
        assert r.counters["rejected"] == 2
        assert r.available  # corruption is not an outage
        assert "corrupt" in capsys.readouterr().err

    def test_transient_put_error_retried(self, server, monkeypatch):
        r = RemoteStore(server.url, "results", retries=2)
        monkeypatch.setenv(faults.FAULTS_ENV, "remote.put:error:1:0::0")
        assert r.put_bytes("k1", b"data", wait=True)
        assert r.counters["retries"] == 1
        assert r.counters["pushes"] == 1
        assert faults.recovered_counts()["remote.put"] == 1

    def test_async_drop_counted_and_drain_all_reports(self, capsys):
        port = _free_port()  # nothing listening
        r = remote_mod.remote_for(f"http://127.0.0.1:{port}", "results")
        r.retries = 0
        r.cooldown = 60.0
        r.put_bytes("k1", b"data")  # async: fails in the push thread
        assert r.drain(timeout=10.0)
        assert r.counters["dropped"] == 1
        r.put_bytes("k2", b"data")  # window open: dropped synchronously
        assert r.counters["dropped"] == 2
        remote_mod.drain_all(timeout=10.0)
        err = capsys.readouterr().err
        assert "2 push(es) dropped" in err

    def test_drain_timeout_warns_with_pending_count(self, server,
                                                    monkeypatch, capsys):
        r = RemoteStore(server.url, "results")
        monkeypatch.setattr(RemoteStore, "_push_now",
                            lambda self, key, data: time.sleep(0.5) or True)
        r.put_bytes("k1", b"data")
        assert r.drain(timeout=0.05) is False
        assert "drain timed out with 1 undelivered" in \
            capsys.readouterr().err


# ----------------------------------------------------------------------
# Store / trace fault sites
# ----------------------------------------------------------------------
class TestStoreAndTraceFaults:
    def test_enospc_on_result_put_degrades_to_memory(self, tmp_path,
                                                     monkeypatch, capsys):
        monkeypatch.setenv(faults.FAULTS_ENV, "store.put:enospc:1")
        runner = Runner(cache_dir=tmp_path / "cache")
        jobs = [JobSpec("ar", gem5_baseline(), label="base", **_FAST)]
        stats = run_jobs(jobs, workers=1, runner=runner)
        assert not isinstance(stats[0], JobFailure)
        assert stats[0].ipc > 0
        assert "write failed" in capsys.readouterr().err
        assert ResultStore(tmp_path / "cache").stats()["entries"] == 0

    def test_truncated_trace_quarantined_and_resynthesized(self, tmp_path,
                                                           monkeypatch):
        tstore = TraceStore(root=str(tmp_path / "traces"), remote=False)
        warm = Runner(cache_dir=tmp_path / "c1", trace_store=tstore)
        warm.trace_for("ar", "tiny", 4000)  # synthesize + save
        assert tstore.contains("ar", "tiny", 4000)

        monkeypatch.setenv(faults.FAULTS_ENV, "trace.load:truncate:1")
        cold = Runner(cache_dir=tmp_path / "c2",
                      trace_store=TraceStore(root=str(tmp_path / "traces"),
                                             remote=False))
        trace, _ = cold.trace_for("ar", "tiny", 4000)
        assert len(trace.kind) > 0
        assert faults.injected_counts()[("trace.load", "truncate")] >= 1
        assert faults.recovered_counts()["trace.load"] >= 1


# ----------------------------------------------------------------------
# Journals and `repro report` degradation
# ----------------------------------------------------------------------
class TestJournalDegradation:
    def test_interrupt_writes_interrupted_summary(self, tmp_path,
                                                  monkeypatch):
        jdir = tmp_path / "journals"
        monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(jdir))
        import repro.core.runner as runner_mod

        calls = {"n": 0}

        def interrupt(trace, config, model="cycle", **kwargs):
            calls["n"] += 1
            raise KeyboardInterrupt

        # The serial path binds `simulate` at import time.
        monkeypatch.setattr(runner_mod, "simulate", interrupt)
        jobs = [JobSpec("ar", gem5_baseline(), label="base", **_FAST)]
        with pytest.raises(KeyboardInterrupt):
            run_jobs(jobs, workers=1,
                     runner=Runner(cache_dir=tmp_path / "cache"))
        assert calls["n"] == 1  # Ctrl-C is never retried
        records = telemetry.read_journal(telemetry.latest_journal(str(jdir)))
        assert records[-1]["type"] == "summary"
        assert records[-1]["status"] == "interrupted"
        assert telemetry.active_journal() is None

    def test_report_exits_zero_on_empty_journal(self, tmp_path, capsys):
        from repro.__main__ import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 0
        assert "no parseable records" in capsys.readouterr().out

    def test_report_exits_zero_on_garbage_journal(self, tmp_path, capsys):
        from repro.__main__ import main

        torn = tmp_path / "torn.jsonl"
        # A torn line, a non-dict valid-JSON line: none are records.
        torn.write_text('{"type": "ru\n42\n')
        assert main(["report", str(torn)]) == 0
        assert "no parseable records" in capsys.readouterr().out

    def test_torn_journal_with_failures_still_reports(self, tmp_path,
                                                      capsys):
        from repro.__main__ import main

        torn = tmp_path / "torn.jsonl"
        torn.write_text(
            '{"type": "run", "label": "x", "utc": "t", "pid": 1}\n'
            '{"type": "failure", "workload": "ar", "label": "512", '
            '"model": "cycle", "error": "boom", "error_type": '
            '"RuntimeError", "attempts": 3}\n'
            '{"type": "job", "workload": "co", "label": "512", "model"')
        assert main(["report", str(torn)]) == 0
        out = capsys.readouterr().out
        assert "status=incomplete" in out
        assert "quarantined failures (1)" in out
