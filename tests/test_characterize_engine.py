"""Engine-routed characterization and figure generation.

``characterize()``, ``characterize_vtune_suite()``, and the
simulation-backed figure generators expand to ``JobSpec`` lists and
execute via ``run_jobs`` — results must be identical to the serial
path for any worker count, for both fidelity tiers.
"""

import pytest

from repro.core.characterize import (
    Characterization,
    characterize,
    characterize_jobs,
    characterize_vtune_suite,
)
from repro.core.figures import fig4_hotspots, fig7_pipeline_stages
from repro.core.runner import Runner
from repro.engine import Progress, run_jobs
from repro.uarch.config import gem5_baseline, host_i9

_FAST = dict(scale="tiny", budget=2000)


def _no_cache_runner():
    return Runner(use_disk_cache=False)


def test_characterize_jobs_expand_the_suite():
    jobs = characterize_jobs(["ar", "co"], model="interval", **_FAST)
    assert [j.workload for j in jobs] == ["ar", "co"]
    assert all(j.model == "interval" for j in jobs)
    assert all(j.budget == 2000 for j in jobs)
    # The host config is the default, as before the engine routing.
    assert jobs[0].config.name == host_i9().name
    # Tiers never share store keys.
    cycle_jobs = characterize_jobs(["ar"], **_FAST)
    assert cycle_jobs[0].key() != jobs[0].key()


def test_characterize_single_accepts_model(tmp_path):
    runner = Runner(cache_dir=tmp_path)
    c = characterize("ar", runner=runner, model="interval", **_FAST)
    assert c.workload == "ar"
    assert c.metrics.ipc > 0
    assert set(c.topdown.row()) >= {"workload", "retiring_pct"}
    # The interval result was cached under a tier-suffixed key.
    assert any("_interval-v" in k for k in runner.store.keys())


@pytest.mark.parametrize("model", ("cycle", "interval"))
def test_vtune_suite_parallel_identical_to_serial(model):
    serial = characterize_vtune_suite(
        runner=_no_cache_runner(), workers=1, model=model, **_FAST)
    parallel = characterize_vtune_suite(
        runner=_no_cache_runner(), workers=2, model=model, **_FAST)
    assert len(serial) == len(parallel) == 12
    for a, b in zip(serial, parallel):
        assert a.workload == b.workload
        assert a.stats.as_dict() == b.stats.as_dict()
        assert a.summary() == b.summary()


def test_suite_progress_counts_jobs():
    progress = Progress(0, enabled=False)
    chars = characterize_vtune_suite(
        runner=_no_cache_runner(), workers=1, progress=progress,
        model="interval", **_FAST)
    assert progress.done == progress.total == len(chars) == 12


def test_fig7_parallel_identical_to_serial():
    serial = fig7_pipeline_stages(
        scale="tiny", runner=_no_cache_runner(), workers=1,
        model="interval")
    parallel = fig7_pipeline_stages(
        scale="tiny", runner=_no_cache_runner(), workers=2,
        model="interval")
    assert serial == parallel
    assert [r["workload"] for r in serial["fetch"]] == [
        "ar", "co", "dm", "ma", "rj", "tu"]


def test_fig4_routes_through_engine(tmp_path):
    runner = Runner(cache_dir=tmp_path)
    rows = fig4_hotspots(runner=runner, workload_names=["ar", "ma"],
                         workers=1, model="interval")
    assert [r["workload"] for r in rows] == ["ar", "ma"]
    assert all("category" in r for r in rows)
    # Simulations went through JobSpec keys in the runner's store.
    assert len(runner.store.keys()) == 2


def test_run_jobs_mixed_tiers_share_one_trace(tmp_path):
    # Same (workload, scale, budget): one memoized trace serves both
    # tiers, and each tier lands under its own store key.
    cfg = gem5_baseline()
    jobs = characterize_jobs(["ar"], config=cfg, **_FAST)
    jobs += characterize_jobs(["ar"], config=cfg, model="interval", **_FAST)
    assert jobs[0].trace_key == jobs[1].trace_key
    runner = Runner(cache_dir=tmp_path)
    stats = run_jobs(jobs, workers=1, runner=runner)
    assert stats[0].as_dict() != stats[1].as_dict()  # different tiers
    assert len(runner.store.keys()) == 2
    c = Characterization("ar", stats[1])
    assert c.metrics.ipc > 0
