"""The staged `uarch.core` package: golden parity and stage structure.

The refactored cycle tier must be *bit-identical* to the monolithic
seed simulator; ``tests/golden/gem5_simstats.json`` holds the seed's
``SimStats.as_dict()`` for every gem5 workload (budget 80k, warm and
cold) and every run here must reproduce it field for field.
"""

import pytest

from gem5_golden import gem5_golden, gem5_traces
from repro.trace import TraceBuilder
from repro.uarch import CycleCore, gem5_baseline, simulate
from repro.uarch.core import MODELS
from repro.uarch.core.observers import (
    HotspotSampler,
    Observer,
    TMASlotClassifier,
)

WORKLOADS = ("ar", "co", "dm", "ma", "rj", "tu")


def _simple_trace(n_ops=2000):
    tb = TraceBuilder()
    tb.set_function("blas_axpy")
    r = tb.region("v", n_ops)
    for i in range(n_ops // 4):
        lx = tb.load(0, r, i)
        s = tb.fp_add(1, dep1=tb.dep_to(lx))
        tb.store(2, r, i, dep1=tb.dep_to(s))
        tb.branch(3, taken=(i % 8 != 7))
    return tb.build()


# ----------------------------------------------------------------------
# Golden parity with the pre-refactor monolith
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("mode", ("warm", "cold"))
def test_cycle_tier_matches_seed_golden(workload, mode):
    trace = gem5_traces()[workload]
    stats = simulate(trace, gem5_baseline(), warm=(mode == "warm"),
                     model="cycle")
    got = stats.as_dict()
    want = gem5_golden()[workload][mode]
    mismatched = [k for k in want if got[k] != want[k]]
    assert got == want, f"{workload}/{mode} diverges in {mismatched}"


# ----------------------------------------------------------------------
# Stage split semantics
# ----------------------------------------------------------------------
class TestStagedCore:
    def test_model_dispatch_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown model"):
            simulate(_simple_trace(), gem5_baseline(), model="oracle")
        assert set(MODELS) == {"cycle", "interval"}

    def test_kind_counts_cover_all_ops(self):
        trace = _simple_trace()
        stats = simulate(trace, gem5_baseline())
        assert sum(stats.issued_by_kind.values()) == len(trace)
        assert sum(stats.committed_by_kind.values()) == len(trace)
        # Same shape as the trace mix: everything dispatched retires.
        assert stats.committed_by_kind == stats.issued_by_kind

    def test_committed_counts_derived_at_commit(self):
        # Cap the run mid-flight: commit-stage counts must reflect only
        # actually-retired ops, not dispatch-time totals.
        trace = _simple_trace(4000)
        core = CycleCore(trace, gem5_baseline(), max_cycles=100)
        with pytest.raises(RuntimeError, match="did not finish"):
            core.run()
        state = core.state
        assert sum(state.committed_by_kind.values()) == state.committed
        assert state.committed < len(trace)
        assert (sum(state.issued_by_kind.values())
                >= sum(state.committed_by_kind.values()))

    def test_custom_observer_sees_every_cycle(self):
        class CycleCounter(Observer):
            def __init__(self):
                self.dispatches = 0
                self.ends = 0
                self.finalized = False

            def on_dispatch(self, s):
                self.dispatches += 1

            def on_cycle_end(self, s):
                self.ends += 1

            def finalize(self, s):
                self.finalized = True

        counter = CycleCounter()
        trace = _simple_trace()
        core = CycleCore(
            trace, gem5_baseline(),
            observers=[TMASlotClassifier(), HotspotSampler(), counter])
        stats = core.run()
        assert counter.dispatches == counter.ends == stats.cycles
        assert counter.finalized

    def test_default_observers_reproduce_accounting(self):
        trace = _simple_trace()
        stats = simulate(trace, gem5_baseline())
        total = (stats.slots_retiring + stats.slots_bad_spec
                 + stats.slots_fe_latency + stats.slots_fe_bandwidth
                 + stats.slots_be_memory + stats.slots_be_core)
        assert total == stats.total_slots
        assert sum(stats.func_clockticks.values()) == stats.cycles

    def test_observerless_run_skips_accounting_only(self):
        trace = _simple_trace()
        bare = CycleCore(trace, gem5_baseline(), observers=[]).run()
        full = simulate(trace, gem5_baseline())
        # Timing is observer-independent ...
        assert bare.cycles == full.cycles
        assert bare.committed_by_kind == full.committed_by_kind
        # ... only the sampled accounting disappears.
        assert bare.slots_retiring == 0
        assert bare.func_clockticks == {}

    def test_pipeline_shim_still_importable(self):
        from repro.uarch import pipeline

        trace = _simple_trace(400)
        a = pipeline.simulate(trace, gem5_baseline())
        b = simulate(trace, gem5_baseline())
        assert a.as_dict() == b.as_dict()
