"""Cycle-backend matrix: golden parity, capability fallback, store keys.

Every registered backend must produce bit-identical ``SimStats`` — the
contract that keeps ``REPRO_CYCLE_BACKEND`` out of the result-store
key.  The matrix pins each backend against the committed seed golden
fixtures (six gem5 workloads, warm and cold) and against the reference
on the host-i9 L3/LTAGE config; backends that cannot represent a run
(no streams, custom observers, missing toolchain) must route to
``python`` with a one-line warning rather than diverge.
"""

import pytest

from gem5_golden import gem5_golden, gem5_traces
from repro.engine.jobs import JobSpec
from repro.uarch import CycleCore, gem5_baseline, host_i9, simulate
from repro.uarch.core import backends as cycle_backends

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

WORKLOADS = ("ar", "co", "dm", "ma", "rj", "tu")


def _require(backend):
    if not cycle_backends.get_backend(backend).available():
        pytest.skip(f"backend {backend!r} unavailable on this host")


# ----------------------------------------------------------------------
# Golden-fixture bit-parity, every backend x workload x warm/cold
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", cycle_backends.BACKEND_NAMES)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("mode", ("warm", "cold"))
def test_backend_matches_seed_golden(backend, workload, mode):
    _require(backend)
    trace = gem5_traces()[workload]
    stats = simulate(trace, gem5_baseline(), warm=(mode == "warm"),
                     backend=backend)
    got = stats.as_dict()
    want = gem5_golden()[workload][mode]
    mismatched = [k for k in want if got[k] != want[k]]
    assert got == want, f"{backend}/{workload}/{mode} diverges in {mismatched}"


@pytest.mark.parametrize("backend", ("numpy", "native"))
@pytest.mark.parametrize("workload", ("ar", "ma"))
@pytest.mark.parametrize("warm", (True, False))
def test_backend_matches_reference_on_host_i9(backend, workload, warm):
    # L3 present, LTAGE predictor: the deepest machinery the callback/
    # stream boundary must keep bit-exact.
    _require(backend)
    trace = gem5_traces()[workload]
    ref = simulate(trace, host_i9(), warm=warm, backend="python").as_dict()
    got = simulate(trace, host_i9(), warm=warm, backend=backend).as_dict()
    diffs = [k for k in ref if got[k] != ref[k]]
    assert got == ref, f"{backend} diverges on host-i9 in {diffs}"


@pytest.mark.parametrize("backend", ("numpy", "native"))
def test_non_stream_run_falls_back_bit_exactly(backend, monkeypatch):
    # REPRO_STREAMS=0 removes the representation the compiled kernels
    # need; the run must still match golden, via the python fallback.
    _require(backend)
    monkeypatch.setenv("REPRO_STREAMS", "0")
    trace = gem5_traces()["ar"]
    core = CycleCore(trace, gem5_baseline(), backend=backend)
    assert core.backend == "python"
    assert core.backend_fallback is not None
    got = core.run().as_dict()
    assert got == gem5_golden()["ar"]["warm"]


# ----------------------------------------------------------------------
# Capability fallback
# ----------------------------------------------------------------------
class TestFallback:
    def test_custom_observers_route_to_python(self):
        _require("numpy")
        from repro.uarch.core.observers import Observer

        class Probe(Observer):
            def on_cycle_end(self, s):
                pass

        trace = gem5_traces()["ar"]
        core = CycleCore(trace, gem5_baseline(), observers=[Probe()],
                         backend="numpy")
        assert core.backend == "python"
        assert "observers" in core.backend_fallback

    def test_fallback_warns_once(self, monkeypatch, capsys):
        _require("numpy")
        from repro import env as env_mod

        monkeypatch.setattr(env_mod, "_WARNED", set())
        _, name, reason = cycle_backends.select_backend(
            "numpy", streams=None, default_observers=True)
        assert name == "python"
        assert reason is not None
        err = capsys.readouterr().err
        assert "falling back to python" in err
        # Same condition again: warn_once stays quiet.
        cycle_backends.select_backend("numpy", streams=None,
                                      default_observers=True)
        assert "falling back" not in capsys.readouterr().err

    def test_invalid_env_value_uses_default(self, monkeypatch):
        from repro import env as env_mod

        monkeypatch.setattr(env_mod, "_WARNED", set())
        monkeypatch.setenv(cycle_backends.BACKEND_ENV, "fortran")
        assert cycle_backends.backend_from_env() == \
            cycle_backends.DEFAULT_BACKEND

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="unknown cycle backend"):
            cycle_backends.get_backend("fortran")


# ----------------------------------------------------------------------
# Selection plumbing
# ----------------------------------------------------------------------
class TestSelection:
    def test_env_knob_selects_backend(self, monkeypatch):
        _require("numpy")
        monkeypatch.setenv(cycle_backends.BACKEND_ENV, "numpy")
        trace = gem5_traces()["ar"]
        core = CycleCore(trace, gem5_baseline())
        assert core.backend == "numpy"

    def test_python_always_available(self):
        assert "python" in cycle_backends.available_backends()

    def test_best_backend_is_available(self):
        best = cycle_backends.best_backend()
        assert best in cycle_backends.available_backends()

    def test_backend_never_in_store_key(self, monkeypatch):
        monkeypatch.delenv(cycle_backends.BACKEND_ENV, raising=False)
        base = JobSpec("ar", gem5_baseline()).key()
        for name in cycle_backends.BACKEND_NAMES:
            monkeypatch.setenv(cycle_backends.BACKEND_ENV, name)
            assert JobSpec("ar", gem5_baseline()).key() == base

    def test_simulate_records_backend_span(self):
        from repro import telemetry

        trace = gem5_traces()["ar"]
        with telemetry.span("test-root") as root:
            simulate(trace, gem5_baseline(), backend="python")
        spans = [s for s in root.children if s.name == "simulate:cycle"]
        assert spans and spans[0].attrs.get("backend") == "python"
