"""Tests for the CPU simulator: caches, TLB, predictors, pipeline."""

import numpy as np
import pytest

from repro.trace import TraceBuilder
from repro.trace import kernels as tk
from repro.uarch import (
    LTAGE,
    Cache,
    CacheConfig,
    CoreConfig,
    LocalBP,
    MemoryHierarchy,
    PerceptronBP,
    TLB,
    TournamentBP,
    gem5_baseline,
    host_i9,
    make_predictor,
    simulate,
)
from repro.uarch.stats import SimStats


class TestCache:
    def test_hit_after_fill(self):
        c = Cache(CacheConfig(1, 2, 1))
        assert not c.access(0x1000)
        assert c.access(0x1000)

    def test_same_line_aliases(self):
        c = Cache(CacheConfig(1, 2, 1))
        c.access(0x1000)
        assert c.access(0x103F)  # same 64B line

    def test_lru_eviction(self):
        cfg = CacheConfig(1, 2, 1)  # 8 sets, 2-way
        c = Cache(cfg)
        s = cfg.sets * 64
        c.access(0x0)
        c.access(0x0 + s)      # same set, second way
        c.access(0x0 + 2 * s)  # evicts 0x0
        assert not c.access(0x0)

    def test_lru_refresh_on_hit(self):
        cfg = CacheConfig(1, 2, 1)
        c = Cache(cfg)
        s = cfg.sets * 64
        c.access(0x0)
        c.access(s)
        c.access(0x0)          # refresh
        c.access(2 * s)        # evicts s, not 0x0
        assert c.contains(0x0)
        assert not c.contains(s)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(3, 7, 1)

    def test_interference_evicts(self):
        cfg = CacheConfig(1, 2, 1)
        quiet = Cache(cfg)
        noisy = Cache(cfg, interference_period=1)
        for addr in (0x0, 0x0):
            quiet.access(addr)
            noisy.access(addr)
        # Foreign line installed after each access pressures the set.
        assert noisy.misses >= quiet.misses

    def test_miss_rate(self):
        c = Cache(CacheConfig(1, 2, 1))
        c.access(0x0)
        c.access(0x0)
        assert c.miss_rate == 0.5


class TestTLB:
    def test_hit_miss_and_penalty(self):
        t = TLB(entries=2, miss_penalty=10)
        assert t.access(0x1000) == 10
        assert t.access(0x1fff) == 0  # same page
        t.access(0x2000)
        t.access(0x3000)  # evicts 0x1000's page
        assert t.access(0x1000) == 10

    def test_stats(self):
        t = TLB(entries=4, miss_penalty=5)
        t.access(0x0)
        t.access(0x0)
        assert t.accesses == 2
        assert t.misses == 1


class TestBranchPredictors:
    @pytest.mark.parametrize("name", ["local", "tournament", "ltage",
                                      "perceptron"])
    def test_learns_always_taken(self, name):
        bp = make_predictor(name)
        pc = 0x4000
        for _ in range(64):
            bp.predict(pc)
            bp.update(pc, True)
        assert bp.predict(pc) is True

    @pytest.mark.parametrize("name", ["local", "tournament", "ltage",
                                      "perceptron"])
    def test_learns_always_not_taken(self, name):
        bp = make_predictor(name)
        pc = 0x4040
        for _ in range(64):
            bp.predict(pc)
            bp.update(pc, False)
        assert bp.predict(pc) is False

    def test_history_predictors_learn_alternation(self):
        """LTAGE and perceptron should learn T/N alternation; a plain
        bimodal-style local predictor cannot."""
        pattern = [True, False] * 200
        scores = {}
        for name in ("ltage", "perceptron", "local"):
            bp = make_predictor(name)
            pc = 0x5000
            correct = 0
            for taken in pattern:
                if bp.predict(pc) == taken:
                    correct += 1
                bp.record(bp.predict(pc), taken)
                bp.update(pc, taken)
            scores[name] = correct / len(pattern)
        assert scores["ltage"] > scores["local"]
        assert scores["perceptron"] > scores["local"]

    def test_mispredict_rate_tracked(self):
        bp = LocalBP()
        bp.record(True, False)
        bp.record(True, True)
        assert bp.mispredict_rate == 0.5

    def test_unknown_predictor(self):
        with pytest.raises(KeyError):
            make_predictor("oracle")

    def test_classes_exported(self):
        assert isinstance(make_predictor("tournament"), TournamentBP)
        assert isinstance(make_predictor("ltage"), LTAGE)
        assert isinstance(make_predictor("perceptron"), PerceptronBP)


class TestConfig:
    def test_gem5_baseline_matches_table2(self):
        cfg = gem5_baseline()
        assert cfg.freq_ghz == 3.0
        assert (cfg.fetch_width, cfg.dispatch_width, cfg.issue_width,
                cfg.commit_width) == (4, 6, 6, 4)
        assert cfg.rob_entries == 224
        assert cfg.iq_entries == 128
        assert (cfg.lq_entries, cfg.sq_entries) == (72, 56)
        assert cfg.l1i.size_kb == 32
        assert cfg.l2.size_kb == 1024
        assert cfg.branch_predictor == "tournament"

    def test_with_changes_is_nondestructive(self):
        base = gem5_baseline()
        fast = base.with_changes(freq_ghz=4.0)
        assert base.freq_ghz == 3.0
        assert fast.freq_ghz == 4.0

    def test_digest_distinguishes_configs(self):
        a = gem5_baseline().digest()
        b = gem5_baseline(freq_ghz=2.0).digest()
        assert a != b

    def test_dram_latency_scales_with_frequency(self):
        slow = gem5_baseline(freq_ghz=1.0)
        fast = gem5_baseline(freq_ghz=4.0)
        assert fast.dram_latency_cycles == 4 * slow.dram_latency_cycles

    def test_table_rows(self):
        rows = dict(gem5_baseline().table())
        assert rows["Reorder Buffer (ROB) entries"] == "224"

    def test_host_has_three_levels(self):
        assert host_i9().l3 is not None


def _simple_trace(n_ops=2000, with_branches=True):
    tb = TraceBuilder()
    tb.set_function("blas_axpy")
    r = tb.region("v", n_ops)
    for i in range(n_ops // 4):
        lx = tb.load(0, r, i)
        s = tb.fp_add(1, dep1=tb.dep_to(lx))
        tb.store(2, r, i, dep1=tb.dep_to(s))
        if with_branches:
            tb.branch(3, taken=(i % 8 != 7))
        else:
            tb.int_op(3)
    return tb.build()


class TestPipeline:
    def test_all_instructions_commit(self):
        trace = _simple_trace()
        stats = simulate(trace, gem5_baseline())
        assert stats.instructions == len(trace)
        assert stats.cycles > 0
        assert 0 < stats.ipc <= gem5_baseline().dispatch_width

    def test_slot_accounting_sums_to_total(self):
        trace = _simple_trace()
        stats = simulate(trace, gem5_baseline())
        total = (stats.slots_retiring + stats.slots_bad_spec
                 + stats.slots_fe_latency + stats.slots_fe_bandwidth
                 + stats.slots_be_memory + stats.slots_be_core)
        assert total == stats.total_slots

    def test_retiring_slots_equal_instructions(self):
        trace = _simple_trace()
        stats = simulate(trace, gem5_baseline())
        assert stats.slots_retiring == len(trace)

    def test_wider_pipeline_not_slower(self):
        trace = _simple_trace()
        narrow = simulate(trace, gem5_baseline(
            fetch_width=2, dispatch_width=2, issue_width=2, commit_width=2))
        wide = simulate(trace, gem5_baseline())
        assert wide.cycles <= narrow.cycles

    def test_higher_frequency_not_slower_in_seconds(self):
        trace = _simple_trace()
        slow = simulate(trace, gem5_baseline(freq_ghz=1.0))
        fast = simulate(trace, gem5_baseline(freq_ghz=4.0))
        assert fast.seconds < slow.seconds

    def test_pause_serializes(self):
        tb = TraceBuilder()
        tk.trace_spin_wait(tb, 50)
        stats = simulate(tb.build(), gem5_baseline())
        assert stats.pause_ops == 50
        assert stats.serialize_stall_cycles > 0
        split = stats.stall_split()
        assert split["be_core"] > 0.5

    def test_dependent_chain_slower_than_parallel(self):
        def chain_trace(dependent):
            tb = TraceBuilder()
            tb.set_function("blas_dot")
            prev = None
            for i in range(3000):
                dep = tb.dep_to(prev) if (dependent and prev is not None) \
                    else 0
                prev = tb.fp_add(0, dep1=dep)
            return tb.build()

        serial = simulate(chain_trace(True), gem5_baseline())
        parallel = simulate(chain_trace(False), gem5_baseline())
        assert serial.cycles > 1.5 * parallel.cycles

    def test_branch_mispredicts_counted(self):
        rng = np.random.default_rng(7)
        tb = TraceBuilder()
        tb.set_function("contact_search")
        for i in range(4000):
            tb.int_op(0)
            tb.branch(1, taken=bool(rng.integers(0, 2)))
        stats = simulate(tb.build(), gem5_baseline())
        assert stats.branch_mispredicts > 100  # random branches mispredict

    def test_warmup_removes_cold_misses(self):
        trace = _simple_trace()
        cold = simulate(trace, gem5_baseline(), warm=False)
        warm = simulate(trace, gem5_baseline(), warm=True)
        assert warm.mpki("l1d") <= cold.mpki("l1d")

    def test_empty_trace(self):
        tb = TraceBuilder()
        stats = simulate(tb.build(), gem5_baseline())
        assert stats.instructions == 0
        assert stats.cycles == 0

    def test_stats_roundtrip_serialization(self):
        trace = _simple_trace(800)
        stats = simulate(trace, gem5_baseline())
        clone = SimStats.from_dict(stats.as_dict())
        assert clone.cycles == stats.cycles
        assert clone.topdown() == stats.topdown()
        assert clone.mpki("l1d") == stats.mpki("l1d")

    def test_determinism(self):
        trace = _simple_trace()
        a = simulate(trace, gem5_baseline())
        b = simulate(trace, gem5_baseline())
        assert a.cycles == b.cycles
        assert a.as_dict() == b.as_dict()


class TestHierarchy:
    def test_data_miss_escalates_levels(self):
        cfg = gem5_baseline()
        h = MemoryHierarchy(cfg)
        lat_miss = h.access_data(0x100000)
        lat_hit = h.access_data(0x100000)
        assert lat_miss >= cfg.dram_latency_cycles
        assert lat_hit == cfg.l1d.hit_latency

    def test_inst_prefetch_next_line(self):
        h = MemoryHierarchy(gem5_baseline())
        h.access_inst(0x400000)
        assert h.l1i.contains(0x400040)  # next line prefetched

    def test_mpki_computation(self):
        h = MemoryHierarchy(gem5_baseline())
        h.access_data(0x0)
        out = h.mpki(1000)
        assert out["l1d"] == 1.0
