"""Tests for the profiling layer and the characterization core."""

import numpy as np
import pytest

from repro.core import default_runner, table1_rows, table2_rows
from repro.core.characterize import characterize
from repro.core.runner import Runner
from repro.core import sweeps
from repro.io import render_bars, render_stacked, render_table, save_json, load_json
from repro.profiling import (
    analyze,
    hotspot_report,
    measure_workload,
    metric_set,
    percent_diff,
    prevalence_symbol,
    speedup,
)
from repro.trace import TraceBuilder
from repro.trace import kernels as tk
from repro.uarch import gem5_baseline, simulate
from repro.workloads import get


def small_stats():
    tb = TraceBuilder()
    tb.set_function("blas_axpy")
    r = tb.region("v", 512)
    for i in range(400):
        lx = tb.load(0, r, i)
        s = tb.fp_add(1, dep1=tb.dep_to(lx))
        tb.store(2, r, i, dep1=tb.dep_to(s))
        tb.branch(3, taken=(i % 4 != 3))
    return simulate(tb.build(), gem5_baseline())


class TestTopDown:
    def test_level1_sums_to_one(self):
        td = analyze(small_stats(), "t")
        assert np.isclose(sum(td.level1.values()), 1.0, atol=1e-9)

    def test_row_fields(self):
        row = analyze(small_stats(), "t").row()
        assert set(row) == {"workload", "retiring_pct", "frontend_pct",
                            "bad_spec_pct", "backend_pct"}

    def test_stall_row_consistent_with_level1(self):
        td = analyze(small_stats(), "t")
        be = td.be_split["memory"] + td.be_split["core"]
        assert np.isclose(be, td.backend_bound, atol=1e-9)


class TestHotspots:
    def test_symbols(self):
        assert prevalence_symbol(0.9) == "R"
        assert prevalence_symbol(0.6) == "O"
        assert prevalence_symbol(0.3) == "Y"
        assert prevalence_symbol(0.1) == "G"

    def test_report_identifies_hot_function(self):
        stats = small_stats()
        report = hotspot_report(stats, "t")
        names = [n for n, _, _ in report.top_functions(3)]
        assert "blas_axpy" in names

    def test_category_symbols_cover_all(self):
        report = hotspot_report(small_stats(), "t")
        symbols = report.category_symbols()
        assert set(symbols) == {"internal", "sparsity", "matrix", "febio",
                                "mkl_blas", "pardiso"}
        assert symbols["mkl_blas"] in "ROYG"


class TestMetrics:
    def test_metric_set_fields(self):
        m = metric_set(small_stats(), "t")
        assert m.ipc > 0
        assert m.seconds > 0
        d = m.as_dict()
        assert "l1d_mpki" in d

    def test_percent_diff(self):
        assert percent_diff(110.0, 100.0) == pytest.approx(10.0)
        assert percent_diff(90.0, 100.0) == pytest.approx(-10.0)
        assert percent_diff(5.0, 0.0) == 0.0

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0


class TestTimeline:
    def test_measure_workload(self):
        point = measure_workload(get("te01"), "tiny")
        assert point.seconds > 0
        assert point.size_kb > 0
        assert point.category == "TE"
        assert not point.case_study


class TestRunner:
    def test_trace_memoized(self, tmp_path):
        r = Runner(cache_dir=str(tmp_path))
        t1, _ = r.trace_for("te01", "tiny", 5000)
        t2, _ = r.trace_for("te01", "tiny", 5000)
        assert t1 is t2

    def test_disk_cache_roundtrip(self, tmp_path):
        r = Runner(cache_dir=str(tmp_path))
        cfg = gem5_baseline()
        s1 = r.stats_for("te01", cfg, scale="tiny", budget=5000)
        s2 = r.stats_for("te01", cfg, scale="tiny", budget=5000)
        assert s1.cycles == s2.cycles
        assert list(tmp_path.glob("*.json"))

    def test_clear_cache(self, tmp_path):
        r = Runner(cache_dir=str(tmp_path))
        r.stats_for("te01", gem5_baseline(), scale="tiny", budget=5000)
        r.clear_disk_cache()
        assert not list(tmp_path.glob("*.json"))


class TestSweepsAndTables:
    def test_width_sweep_shape(self, tmp_path):
        r = Runner(cache_dir=str(tmp_path))
        data = sweeps.width_sweep(workloads=("te01",), widths=(2, 6),
                                  scale="tiny", budget=8000, runner=r)
        assert set(data["te01"]) == {2, 6}
        # Narrower pipeline must not be faster.
        assert data["te01"][2].seconds >= data["te01"][6].seconds * 0.99

    def test_bp_sweep_runs_all_predictors(self, tmp_path):
        r = Runner(cache_dir=str(tmp_path))
        data = sweeps.branch_predictor_sweep(
            workloads=("te01",), scale="tiny", budget=8000, runner=r)
        assert set(data["te01"]) == {"local", "tournament", "ltage",
                                     "perceptron"}

    def test_characterize_bundle(self, tmp_path):
        r = Runner(cache_dir=str(tmp_path))
        c = characterize("ma26", gem5_baseline(), scale="tiny",
                         budget=8000, runner=r)
        assert c.topdown.backend_bound > 0.3
        summary = c.summary()
        assert "ipc" in summary

    def test_table2_matches_paper_rows(self):
        rows = dict(table2_rows())
        assert rows["Load Queue / Store Queue entries"] == "72 / 56"
        assert "3 GHz" in rows["Core clock frequency"]

    def test_table1_has_all_categories(self):
        rows = table1_rows(scales=("tiny",))
        labels = {r["category"] for r in rows}
        assert "Eye" in labels
        assert len(labels) == 20
        for r in rows:
            assert r["measured_lo_kb"] <= r["measured_hi_kb"]


class TestIO:
    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}], title="T")
        assert "T" in text and "2.50" in text

    def test_render_bars_handles_negative(self):
        text = render_bars([("x", -5.0), ("y", 10.0)])
        assert "-" in text

    def test_render_stacked(self):
        rows = [{"w": "a", "p": 0.5, "q": 0.5}]
        text = render_stacked(rows, "w", ["p", "q"])
        assert "legend" in text

    def test_json_roundtrip(self, tmp_path):
        path = str(tmp_path / "x.json")
        save_json(path, {"a": [1, 2]})
        assert load_json(path) == {"a": [1, 2]}
