"""Shared golden-fixture state for the simulator test modules.

A plain helper module (not a conftest: the benchmark harness already
owns the bare ``conftest`` import name) with process-wide memoization —
the six default-scale gem5 traces are built once no matter how many
test modules use them.
"""

import json
import os

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

_golden = None
_traces = None


def gem5_golden():
    """Committed seed-simulator SimStats for the six gem5 workloads."""
    global _golden
    if _golden is None:
        with open(os.path.join(GOLDEN_DIR, "gem5_simstats.json")) as fh:
            fixtures = json.load(fh)
        # JSON round-trips func_clockticks keys as strings.
        for fx in fixtures.values():
            for mode in fx.values():
                mode["func_clockticks"] = {
                    int(k): v for k, v in mode["func_clockticks"].items()
                }
        _golden = fixtures
    return _golden


def gem5_traces():
    """One default-scale, 80k-budget trace per gem5 workload (the grid
    the golden fixtures were recorded on), built once per process."""
    global _traces
    if _traces is None:
        from repro.core.runner import Runner

        runner = Runner(use_disk_cache=False)
        _traces = {
            w: runner.trace_for(w, "default", 80_000)[0]
            for w in gem5_golden()
        }
    return _traces
