"""Vectorized trace kernels vs. verbatim per-op reference emitters.

The batched kernels must emit byte-for-byte the op streams the original
per-op loops produced — the golden simulator fixtures (and every cached
trace-store entry) depend on it.  Each reference below is the
pre-vectorization implementation, kept verbatim.
"""

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.trace import kernels as tk
from repro.trace.builder import TraceBuilder

COLUMNS = ("kind", "addr", "pc", "taken", "dep1", "dep2", "func")


# ----------------------------------------------------------------------
# Reference (pre-vectorization) emitters
# ----------------------------------------------------------------------
def ref_spmv(tb, matrix, x_name="x", y_name="y", row_stride=1,
             max_rows=None, max_ops=None, row_offset=0):
    tb.set_function("blas_spmv")
    start = len(tb)
    indptr = tb.region("A.indptr", matrix.n + 1)
    indices = tb.region("A.indices", max(matrix.nnz, 1))
    data = tb.region("A.data", max(matrix.nnz, 1))
    x = tb.region(x_name, matrix.n)
    y = tb.region(y_name, matrix.n)
    rows = range(min(row_offset, matrix.n - 1), matrix.n,
                 max(row_stride, 1))
    if max_rows is not None:
        rows = list(rows)[:max_rows]
    for r in rows:
        if max_ops is not None and len(tb) - start >= max_ops:
            break
        tb.set_replica(r)
        lo = int(matrix.indptr[r])
        hi = int(matrix.indptr[r + 1])
        tb.load(0, indptr, r)
        tb.load(1, indptr, r + 1)
        acc = None
        for j in range(lo, hi):
            col = int(matrix.indices[j])
            lc = tb.load(2, indices, j)
            tb.int_op(9, dep1=1)
            lv = tb.load(3, data, j)
            lx = tb.load(4, x, col, dep1=tb.dep_to(lc))
            m = tb.fp_mul(5, dep1=tb.dep_to(lv), dep2=tb.dep_to(lx))
            acc = tb.fp_add(
                6, dep1=tb.dep_to(m),
                dep2=tb.dep_to(acc) if acc is not None else 0)
            tb.branch(7, taken=(j + 1 < hi))
        tb.store(8, y, r, dep1=tb.dep_to(acc) if acc is not None else 0)
    return tb


def ref_dot(tb, n, unroll=4, a_name="p", b_name="q", max_ops=None):
    tb.set_function("blas_dot")
    start = len(tb)
    a = tb.region(a_name, n)
    b = tb.region(b_name, n)
    accs = [None] * max(unroll, 1)
    for i in range(n):
        if max_ops is not None and len(tb) - start >= max_ops:
            break
        if i % 8 == 0:
            tb.int_op(6)
        la = tb.load(0, a, i)
        lb = tb.load(1, b, i)
        m = tb.fp_mul(2, dep1=tb.dep_to(la), dep2=tb.dep_to(lb))
        lane = i % len(accs)
        accs[lane] = tb.fp_add(
            3, dep1=tb.dep_to(m),
            dep2=tb.dep_to(accs[lane]) if accs[lane] is not None else 0)
        tb.branch(4, taken=(i + 1 < n))
    return tb


def ref_axpy(tb, n, x_name="ax", y_name="ay", max_ops=None):
    tb.set_function("blas_axpy")
    start = len(tb)
    x = tb.region(x_name, n)
    y = tb.region(y_name, n)
    for i in range(n):
        if max_ops is not None and len(tb) - start >= max_ops:
            break
        if i % 8 == 0:
            tb.int_op(6)
        lx = tb.load(0, x, i)
        ly = tb.load(1, y, i)
        m = tb.fp_mul(2, dep1=tb.dep_to(lx))
        s = tb.fp_add(3, dep1=tb.dep_to(m), dep2=tb.dep_to(ly))
        tb.store(4, y, i, dep1=tb.dep_to(s))
        tb.branch(5, taken=(i + 1 < n))
    return tb


def ref_residual(tb, matrix, vec_stride=1, max_ops=None):
    tb.set_function("residual_eval")
    fint = tb.region("f.int", matrix.n)
    fext = tb.region("f.ext", matrix.n)
    res = tb.region("f.res", matrix.n)
    start = len(tb)
    for i in range(0, matrix.n, max(vec_stride, 1)):
        if max_ops is not None and len(tb) - start >= max_ops:
            break
        if i % 4 == 0:
            tb.int_op(5)
        a = tb.load(0, fint, i)
        b = tb.load(1, fext, i)
        s = tb.fp_add(2, dep1=tb.dep_to(a), dep2=tb.dep_to(b))
        tb.store(3, res, i, dep1=tb.dep_to(s))
        tb.branch(4, taken=(i + vec_stride < matrix.n))
    return tb


def ref_spin_wait(tb, n_iterations):
    tb.set_function("omp_barrier_wait")
    flag = tb.region("omp.flag", 8)
    for k in range(n_iterations):
        lf = tb.load(0, flag, 0)
        tb.int_op(1, dep1=tb.dep_to(lf))
        tb.pause(2)
        tb.branch(3, taken=(k + 1 < n_iterations))
    return tb


def ref_element_assembly(tb, connectivity, node_count, fp_intensity=1.0,
                         dep_chain=3, elem_stride=1, ngp=8,
                         dofs_per_node=3, max_ops=None):
    conn_region = tb.region("elem.conn", max(connectivity.size, 1))
    coords = tb.region("mesh.nodes", node_count * 3)
    nelem = connectivity.shape[0]
    nn = connectivity.shape[1]
    fp_per_gp = max(int(10 * fp_intensity), 4)
    start = len(tb)
    for e in range(0, nelem, max(elem_stride, 1)):
        if max_ops is not None and len(tb) - start >= max_ops:
            break
        tb.set_function("stiffness_assembly")
        tb.set_replica(e)
        base = e * nn
        node_loads = []
        for a in range(nn):
            node = int(connectivity[e, a])
            lc = tb.load(0, conn_region, base + a)
            tb.int_op(4, dep1=tb.dep_to(lc))
            for ax in range(3):
                node_loads.append(
                    tb.load(1 + ax, coords, node * 3 + ax,
                            dep1=tb.dep_to(lc)))
        tb.set_function("jacobian_eval")
        tb.set_replica(e)
        j_ops = []
        for k in range(9):
            src = node_loads[k % len(node_loads)]
            m = tb.fp_mul(0, dep1=tb.dep_to(src))
            j_ops.append(tb.fp_add(1, dep1=tb.dep_to(m)))
        det = tb.fp_div(2, dep1=tb.dep_to(j_ops[-1]))
        tb.set_function("constitutive_update")
        tb.set_replica(e)
        for _gp in range(ngp):
            tb.int_op(7)
            chain = det
            for k in range(fp_per_gp):
                if k % max(dep_chain, 1) == 0:
                    chain = tb.fp_mul(3, dep1=tb.dep_to(node_loads[0]))
                else:
                    chain = tb.fp_add(4, dep1=tb.dep_to(chain))
            tb.branch(5, taken=(_gp + 1 < ngp))
        tb.branch(6, taken=(e + elem_stride < nelem))
    return tb


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def _matrix(seed=0, n=37):
    """Small CSR with ragged rows, including empty ones."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    for r in range(n):
        nnz = int(rng.integers(0, 9))
        cs = sorted(set(rng.integers(0, n, size=nnz).tolist()))
        rows += [r] * len(cs)
        cols += cs
    vals = rng.random(len(rows))
    return CSRMatrix.from_coo(
        n, np.array(rows, dtype=np.int64),
        np.array(cols, dtype=np.int64), vals)


def _assert_same(vec_fn, ref_fn, *args, **kwargs):
    t1 = TraceBuilder(code_bloat=1.3, replicas=5)
    vec_fn(t1, *args, **kwargs)
    t2 = TraceBuilder(code_bloat=1.3, replicas=5)
    ref_fn(t2, *args, **kwargs)
    a, b = t1.build(), t2.build()
    assert len(a) == len(b), f"{len(a)} ops vs reference {len(b)}"
    for c in COLUMNS:
        assert np.array_equal(getattr(a, c), getattr(b, c)), \
            f"column {c} differs for {kwargs}"


class TestVectorizedKernels:
    def test_spmv(self):
        m = _matrix()
        for kw in ({}, {"max_ops": 55}, {"max_ops": 0}, {"max_rows": 4},
                   {"row_stride": 3, "row_offset": 5}):
            _assert_same(tk.trace_spmv, ref_spmv, m, **kw)

    def test_dot(self):
        for kw in ({}, {"max_ops": 23}, {"max_ops": 0}, {"unroll": 1},
                   {"unroll": 7}):
            _assert_same(tk.trace_dot, ref_dot, 53, **kw)

    def test_axpy(self):
        for kw in ({}, {"max_ops": 23}, {"max_ops": 0}):
            _assert_same(tk.trace_axpy, ref_axpy, 53, **kw)

    def test_residual(self):
        m = _matrix()
        for kw in ({}, {"vec_stride": 3}, {"max_ops": 17},
                   {"vec_stride": 5, "max_ops": 12}):
            _assert_same(tk.trace_residual, ref_residual, m, **kw)

    def test_spin_wait(self):
        for n in (0, 1, 13):
            _assert_same(tk.trace_spin_wait, ref_spin_wait, n)

    def test_element_assembly(self):
        rng = np.random.default_rng(3)
        conn = rng.integers(0, 40, size=(17, 8))
        for kw in ({}, {"elem_stride": 3}, {"max_ops": 200},
                   {"fp_intensity": 2.5, "dep_chain": 1},
                   {"dep_chain": 7, "ngp": 3},
                   {"elem_stride": 2, "max_ops": 333}):
            _assert_same(tk.trace_element_assembly, ref_element_assembly,
                         conn, 40, **kw)

    def test_emit_run_matches_per_op_emission(self):
        from repro.trace.ops import BRANCH, FP_ADD, INT_ALU, LOAD

        tb1 = TraceBuilder(code_bloat=1.1, replicas=3)
        tb1.set_function("blas_dot")
        tb1.set_replica(2)
        tb1.emit_run(
            np.array([LOAD, INT_ALU, BRANCH, FP_ADD], dtype=np.int8),
            addrs=np.array([640, 0, 0, 0]),
            takens=np.array([0, 0, 1, 0]),
            dep1s=np.array([0, 1, 0, 2]),
            branch_sites=np.array([0, 0, 9, 0]))
        tb2 = TraceBuilder(code_bloat=1.1, replicas=3)
        tb2.set_function("blas_dot")
        tb2.set_replica(2)
        tb2.emit(LOAD, 0, addr=640)
        tb2.emit(INT_ALU, 1, dep1=1)
        tb2.branch(9, taken=True)
        tb2.emit(FP_ADD, 3, dep1=2)
        a, b = tb1.build(), tb2.build()
        for c in COLUMNS:
            assert np.array_equal(getattr(a, c), getattr(b, c)), c
