"""The interval fidelity tier: accuracy, monotonicity, speed, shape."""

import time

import pytest

from gem5_golden import gem5_golden, gem5_traces
from repro.trace import TraceBuilder
from repro.uarch import gem5_baseline, host_i9, simulate
from repro.uarch.config import CacheConfig

WORKLOADS = ("ar", "co", "dm", "ma", "rj", "tu")
L2_SIZES = (256, 512, 1024, 2048)


# ----------------------------------------------------------------------
# Fidelity against the cycle tier
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", WORKLOADS)
def test_interval_ipc_within_15pct_of_cycle(workload):
    trace = gem5_traces()[workload]
    for mode, warm in (("warm", True), ("cold", False)):
        ref = gem5_golden()[workload][mode]
        ref_ipc = ref["instructions"] / ref["cycles"]
        stats = simulate(trace, gem5_baseline(), warm=warm,
                         model="interval")
        err = abs(stats.ipc - ref_ipc) / ref_ipc
        assert err <= 0.15, (
            f"{workload}/{mode}: interval IPC {stats.ipc:.3f} vs cycle "
            f"{ref_ipc:.3f} ({100 * err:.1f}% off)")


@pytest.mark.parametrize("workload", WORKLOADS)
def test_interval_monotone_under_l2_sweep(workload):
    trace = gem5_traces()[workload]
    cycles = [
        simulate(trace, gem5_baseline(l2=CacheConfig(kb, 16, 14)),
                 model="interval").cycles
        for kb in L2_SIZES
    ]
    assert all(a >= b for a, b in zip(cycles, cycles[1:])), (
        f"{workload}: cycles not monotone over L2 sizes: {cycles}")


def test_interval_monotone_under_l1d_sweep():
    trace = gem5_traces()["ar"]
    cycles = [
        simulate(trace, gem5_baseline(l1d=CacheConfig(kb, 8, 4)),
                 model="interval").cycles
        for kb in (8, 16, 32, 64)
    ]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


def test_interval_much_faster_than_cycle():
    """The point of the tier: an l2 mini-grid must run far faster.

    The full-grid speedup is ~40-80x; asserting >=5x leaves room for
    noisy CI machines while still failing if the tier ever degrades
    into a per-op Python loop.
    """
    trace = gem5_traces()["ar"]
    configs = [gem5_baseline(l2=CacheConfig(kb, 16, 14)) for kb in L2_SIZES]
    t0 = time.perf_counter()
    for cfg in configs:
        simulate(trace, cfg, model="cycle")
    t_cycle = time.perf_counter() - t0
    t0 = time.perf_counter()
    for cfg in configs:
        simulate(trace, cfg, model="interval")
    t_interval = time.perf_counter() - t0
    assert t_interval * 5 < t_cycle, (
        f"interval {t_interval:.3f}s vs cycle {t_cycle:.3f}s")


# ----------------------------------------------------------------------
# Stats shape and self-consistency
# ----------------------------------------------------------------------
def _simple_trace(n_ops=2000):
    tb = TraceBuilder()
    tb.set_function("blas_axpy")
    r = tb.region("v", n_ops)
    for i in range(n_ops // 4):
        lx = tb.load(0, r, i)
        s = tb.fp_add(1, dep1=tb.dep_to(lx))
        tb.store(2, r, i, dep1=tb.dep_to(s))
        tb.branch(3, taken=(i % 8 != 7))
    return tb.build()


class TestIntervalStats:
    def test_slot_identity_holds(self):
        stats = simulate(_simple_trace(), gem5_baseline(), model="interval")
        total = (stats.slots_retiring + stats.slots_bad_spec
                 + stats.slots_fe_latency + stats.slots_fe_bandwidth
                 + stats.slots_be_memory + stats.slots_be_core)
        assert total == stats.total_slots
        assert abs(sum(stats.topdown().values()) - 1.0) < 1e-9

    def test_kind_counts_match_trace(self):
        trace = _simple_trace()
        stats = simulate(trace, gem5_baseline(), model="interval")
        counts = trace.kind_counts()
        assert stats.committed_by_kind["load"] == counts["load"]
        assert stats.committed_by_kind["branch"] == counts["branch"]
        assert sum(stats.committed_by_kind.values()) == len(trace)

    def test_fetch_profile_normalizes(self):
        stats = simulate(_simple_trace(), gem5_baseline(), model="interval")
        profile = stats.fetch_profile()
        assert abs(sum(profile.values()) - 1.0) < 1e-9

    def test_cache_hierarchy_shape(self):
        stats = simulate(_simple_trace(8000), host_i9(), model="interval")
        assert set(stats.cache) == {"l1i", "l1d", "l2", "l3"}
        for level in stats.cache.values():
            assert 0 <= level["misses"] <= level["accesses"] or (
                level["accesses"] == 0 and level["misses"] >= 0)
        assert stats.dram_bytes == stats.dram_accesses * 64

    def test_serialization_roundtrip(self):
        from repro.uarch import SimStats

        stats = simulate(_simple_trace(), gem5_baseline(), model="interval")
        clone = SimStats.from_dict(stats.as_dict())
        assert clone.cycles == stats.cycles
        assert clone.topdown() == stats.topdown()

    def test_empty_trace(self):
        stats = simulate(TraceBuilder().build(), gem5_baseline(),
                         model="interval")
        assert stats.instructions == 0
        assert stats.cycles == 0

    def test_deterministic(self):
        trace = _simple_trace()
        a = simulate(trace, gem5_baseline(), model="interval")
        b = simulate(trace, gem5_baseline(), model="interval")
        assert a.as_dict() == b.as_dict()

    def test_warm_not_slower_than_cold(self):
        trace = _simple_trace(8000)
        warm = simulate(trace, gem5_baseline(), warm=True, model="interval")
        cold = simulate(trace, gem5_baseline(), warm=False, model="interval")
        assert warm.cycles <= cold.cycles

    def test_serial_chain_slower_than_parallel(self):
        def chain_trace(dependent):
            tb = TraceBuilder()
            tb.set_function("blas_dot")
            prev = None
            for _ in range(3000):
                dep = tb.dep_to(prev) if (dependent and prev is not None) \
                    else 0
                prev = tb.fp_add(0, dep1=dep)
            return tb.build()

        serial = simulate(chain_trace(True), gem5_baseline(),
                          model="interval")
        parallel = simulate(chain_trace(False), gem5_baseline(),
                            model="interval")
        assert serial.cycles > 1.5 * parallel.cycles

    def test_int_latency_respected(self):
        tb = TraceBuilder()
        tb.set_function("blas_dot")
        prev = None
        for _ in range(2000):
            dep = tb.dep_to(prev) if prev is not None else 0
            prev = tb.int_op(0, dep1=dep)
        trace = tb.build()
        fast = simulate(trace, gem5_baseline(), model="interval")
        slow = simulate(trace, gem5_baseline(int_latency=4),
                        model="interval")
        assert slow.cycles > fast.cycles

    def test_unknown_predictor_rejected(self):
        with pytest.raises(KeyError):
            simulate(_simple_trace(), gem5_baseline(
                branch_predictor="oracle"), model="interval")

    def test_pause_serializes(self):
        from repro.trace import kernels as tk

        tb = TraceBuilder()
        tk.trace_spin_wait(tb, 50)
        stats = simulate(tb.build(), gem5_baseline(), model="interval")
        assert stats.pause_ops == 50
        assert stats.serialize_stall_cycles > 0


# ----------------------------------------------------------------------
# host-i9 (three-level) calibration envelope — the ROADMAP item
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ("ar", "dm", "ma", "rj"))
def test_interval_within_envelope_on_host_i9(workload):
    """Interval vs cycle IPC under the three-level host_i9 preset.

    The tier was calibrated on the two-level gem5 baseline; this pins
    how far it drifts with an L3 in the hierarchy.  Measured deltas at
    default scale / 80k budget (positive = interval optimistic):

        workload   warm      cold
        ar         -8.04%    -2.58%
        co        -10.23%   +11.97%
        dm        -12.98%    -9.93%
        ma         +0.98%    +1.56%
        rj         -7.91%    -3.45%
        tu         -6.29%   +15.41%

    The four workloads asserted here sit within the gem5 15% envelope
    warm and cold; co and tu are excluded (tu cold is at +15.4%, just
    outside) pending the host-i9 recalibration the ROADMAP names.
    """
    trace = gem5_traces()[workload]
    for warm in (True, False):
        ref = simulate(trace, host_i9(), warm=warm, model="cycle")
        approx = simulate(trace, host_i9(), warm=warm, model="interval")
        err = abs(approx.ipc - ref.ipc) / ref.ipc
        assert err <= 0.15, (
            f"{workload}/warm={warm}: interval IPC {approx.ipc:.3f} vs "
            f"cycle {ref.ipc:.3f} ({100 * err:.1f}% off)")
