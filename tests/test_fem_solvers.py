"""Tests for the linear solver suite (direct, skyline, iterative)."""

import numpy as np
import pytest

from repro.fem.solver import (
    DenseLU,
    ILU0Preconditioner,
    JacobiPreconditioner,
    SkylineLDL,
    SkylineMatrix,
    cholesky_solve,
    conjugate_gradient,
    dense_cholesky,
    fgmres,
    is_numerically_symmetric,
    solve_linear,
)
from repro.sparse import CSRMatrix


def spd_matrix(n, seed=0):
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)) * 0.2
    A = 0.5 * (A + A.T) + np.eye(n) * (n * 0.3)
    return A


def laplacian_csr(n):
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i); cols.append(i); vals.append(2.0)
        if i > 0:
            rows.append(i); cols.append(i - 1); vals.append(-1.0)
        if i < n - 1:
            rows.append(i); cols.append(i + 1); vals.append(-1.0)
    return CSRMatrix.from_coo(n, rows, cols, vals)


class TestDenseLU:
    def test_solves_random_system(self):
        A = spd_matrix(20, 1)
        b = np.arange(20, dtype=float)
        x = DenseLU(A).solve(b)
        assert np.allclose(A @ x, b, atol=1e-10)

    def test_pivoting_handles_zero_leading_entry(self):
        A = np.array([[0.0, 1.0], [1.0, 0.0]])
        x = DenseLU(A).solve(np.array([2.0, 3.0]))
        assert np.allclose(x, [3.0, 2.0])

    def test_singular_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            DenseLU(np.zeros((3, 3)))

    def test_determinant(self):
        A = np.array([[2.0, 0.0], [0.0, 3.0]])
        assert np.isclose(DenseLU(A).determinant(), 6.0)
        B = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert np.isclose(DenseLU(B).determinant(), -1.0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            DenseLU(np.zeros((2, 3)))


class TestCholesky:
    def test_factor_and_solve(self):
        A = spd_matrix(15, 2)
        L = dense_cholesky(A)
        assert np.allclose(L @ L.T, A)
        b = np.ones(15)
        x = cholesky_solve(L, b)
        assert np.allclose(A @ x, b, atol=1e-10)

    def test_indefinite_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            dense_cholesky(np.array([[1.0, 2.0], [2.0, 1.0]]))


class TestSkyline:
    def test_from_csr_roundtrip(self):
        m = laplacian_csr(6)
        sky = SkylineMatrix.from_csr(m)
        assert np.allclose(sky.to_dense(), m.to_dense())

    def test_ldl_solves(self):
        m = laplacian_csr(10)
        b = np.linspace(1, 2, 10)
        x = SkylineLDL(SkylineMatrix.from_csr(m)).solve(b)
        assert np.allclose(m.to_dense() @ x, b, atol=1e-10)

    def test_dense_spd_via_skyline(self):
        A = spd_matrix(8, 3)
        m = CSRMatrix.from_dense(A)
        x = SkylineLDL(SkylineMatrix.from_csr(m)).solve(np.ones(8))
        assert np.allclose(A @ x, np.ones(8), atol=1e-9)

    def test_profile_outside_raises(self):
        sky = SkylineMatrix(3, [1, 1, 1])  # diagonal-only profile
        with pytest.raises(IndexError):
            sky.set(2, 0, 1.0)


class TestIterative:
    def test_cg_on_laplacian(self):
        m = laplacian_csr(50)
        b = np.ones(50)
        res = conjugate_gradient(m, b, JacobiPreconditioner(m), rtol=1e-10)
        assert res.converged
        assert np.allclose(m.matvec(res.x), b, atol=1e-7)

    def test_cg_zero_rhs(self):
        m = laplacian_csr(10)
        res = conjugate_gradient(m, np.zeros(10))
        assert res.converged
        assert res.iterations == 0

    def test_cg_detects_indefinite(self):
        A = np.diag([1.0, -1.0, 2.0])
        m = CSRMatrix.from_dense(A)
        res = conjugate_gradient(m, np.array([1.0, 1.0, 1.0]), max_iter=10)
        assert not res.converged

    def test_fgmres_on_nonsymmetric(self):
        rng = np.random.default_rng(4)
        A = np.eye(30) * 4.0 + rng.random((30, 30)) * 0.3
        m = CSRMatrix.from_dense(A)
        b = rng.random(30)
        res = fgmres(m, b, ILU0Preconditioner(m), rtol=1e-10)
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-6)

    def test_fgmres_restart_path(self):
        m = laplacian_csr(40)
        b = np.ones(40)
        res = fgmres(m, b, None, rtol=1e-10, restart=20)
        assert res.converged
        assert np.allclose(m.matvec(res.x), b, atol=1e-6)

    def test_history_monotone_enough(self):
        m = laplacian_csr(30)
        res = conjugate_gradient(m, np.ones(30),
                                 JacobiPreconditioner(m), rtol=1e-12)
        assert res.history[-1] < res.history[0]


class TestPreconditioners:
    def test_jacobi_scales_by_diagonal(self):
        m = CSRMatrix.from_dense(np.diag([2.0, 4.0]))
        p = JacobiPreconditioner(m)
        assert np.allclose(p.apply(np.array([2.0, 4.0])), [1.0, 1.0])

    def test_ilu0_exact_on_triangular_pattern(self):
        # For a dense matrix ILU(0) == full LU: solve exactly.
        A = spd_matrix(8, 5)
        m = CSRMatrix.from_dense(A)
        p = ILU0Preconditioner(m)
        b = np.ones(8)
        assert np.allclose(A @ p.apply(b), b, atol=1e-8)

    def test_ilu0_requires_diagonal(self):
        m = CSRMatrix.from_coo(2, [0, 1], [1, 0], [1.0, 1.0])
        with pytest.raises(ValueError):
            ILU0Preconditioner(m)


class TestRouting:
    def test_auto_small_uses_direct(self):
        m = laplacian_csr(10)
        x, info = solve_linear(m, np.ones(10))
        assert info.method == "direct"
        assert np.allclose(m.matvec(x), np.ones(10), atol=1e-9)

    def test_explicit_methods_agree(self):
        m = laplacian_csr(12)
        b = np.linspace(0, 1, 12)
        answers = {}
        for method in ("direct", "skyline", "cg", "fgmres"):
            x, info = solve_linear(m, b, method=method, rtol=1e-12)
            answers[method] = x
            assert info.method in (method, "direct")
        for method, x in answers.items():
            assert np.allclose(x, answers["direct"], atol=1e-6), method

    def test_symmetry_probe(self):
        assert is_numerically_symmetric(laplacian_csr(20))
        asym = CSRMatrix.from_dense(
            np.array([[1.0, 2.0], [3.0, 1.0]])
        )
        assert not is_numerically_symmetric(asym)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_linear(laplacian_csr(4), np.ones(4), method="magic")

    def test_rhs_shape_check(self):
        with pytest.raises(ValueError):
            solve_linear(laplacian_csr(4), np.ones(5))
