"""Tests for trace encoding, building, and kernel tracers."""

import numpy as np
import pytest

from repro.sparse import CSRMatrix
from repro.trace import (
    BRANCH,
    FP_ADD,
    INT_ALU,
    LOAD,
    PAUSE,
    STORE,
    Trace,
    TraceBuilder,
    TraceRequest,
    func_id,
    workload_trace,
)
from repro.trace import kernels as tk
from repro.trace.functions import CATEGORIES, FUNCTIONS, by_category, info
from repro.workloads import get


def laplacian(n):
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i); cols.append(i); vals.append(2.0)
        if i > 0:
            rows.append(i); cols.append(i - 1); vals.append(-1.0)
        if i < n - 1:
            rows.append(i); cols.append(i + 1); vals.append(-1.0)
    return CSRMatrix.from_coo(n, rows, cols, vals)


class TestFunctionTable:
    def test_categories_cover_fig4(self):
        assert set(CATEGORIES) == {
            "internal", "sparsity", "matrix", "febio", "mkl_blas",
            "pardiso",
        }

    def test_every_function_has_valid_category(self):
        for f in FUNCTIONS.values():
            assert f.category in CATEGORIES

    def test_lookup(self):
        fid = func_id("blas_spmv")
        assert info(fid).name == "blas_spmv"
        assert by_category("pardiso")

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            func_id("nonexistent")


class TestTraceBuilder:
    def test_region_allocation_disjoint(self):
        tb = TraceBuilder()
        a = tb.region("a", 100)
        b = tb.region("b", 100)
        assert a.base + a.nbytes <= b.base

    def test_region_memoized(self):
        tb = TraceBuilder()
        assert tb.region("x", 10) is tb.region("x", 10)

    def test_emitted_ops_roundtrip(self):
        tb = TraceBuilder()
        tb.set_function("blas_dot")
        r = tb.region("v", 8)
        i0 = tb.load(0, r, 3)
        i1 = tb.fp_add(1, dep1=tb.dep_to(i0))
        tb.branch(2, taken=True, dep1=tb.dep_to(i1))
        trace = tb.build()
        assert len(trace) == 3
        assert trace.kind[0] == LOAD
        assert trace.kind[1] == FP_ADD
        assert trace.kind[2] == BRANCH
        assert trace.dep1[1] == 1  # depends on the load just before
        assert trace.taken[2] == 1

    def test_kind_counts_single_bincount(self):
        tb = TraceBuilder()
        tb.set_function("blas_dot")
        r = tb.region("v", 16)
        for i in range(4):
            x = tb.load(0, r, i)
            tb.fp_mul(1, dep1=tb.dep_to(x))
            tb.store(2, r, i)
        tb.branch(3, taken=False)
        tb.pause(4)
        trace = tb.build()
        counts = trace.kind_counts()
        assert counts == {"int": 0, "fp_add": 0, "fp_mul": 4, "fp_div": 0,
                          "load": 4, "store": 4, "branch": 1, "pause": 1}
        assert sum(counts.values()) == len(trace)
        assert trace.memory_ops() == 8
        assert trace.branch_count() == 1
        # One cached histogram backs all three summaries.
        assert trace.kind_histogram() is trace.kind_histogram()

    def test_kind_counts_empty_trace(self):
        trace = TraceBuilder().build()
        assert sum(trace.kind_counts().values()) == 0
        assert trace.memory_ops() == 0
        assert trace.branch_count() == 0

    def test_dep_to_distances(self):
        tb = TraceBuilder()
        tb.set_function("blas_dot")
        i0 = tb.int_op(0)
        tb.int_op(1)
        assert tb.dep_to(i0) == 2

    def test_replicas_expand_code_footprint(self):
        def build(replicas):
            tb = TraceBuilder(replicas=replicas)
            tb.set_function("stiffness_assembly")
            for e in range(64):
                tb.set_replica(e)
                for k in range(20):
                    tb.int_op(k)
            return tb.build().code_footprint_bytes()

        assert build(8) > build(1)

    def test_branch_pcs_stable_across_replica_iterations(self):
        tb = TraceBuilder(replicas=1)
        tb.set_function("blas_spmv")
        pcs = []
        for it in range(3):
            tb.set_replica(0)
            tb.int_op(0)
            idx = tb.branch(7, taken=True)
            pcs.append(tb.build if False else None)
        trace = tb.build()
        branch_pcs = trace.pc[trace.kind == BRANCH]
        assert len(set(branch_pcs.tolist())) == 1

    def test_trace_slice_clamps_deps(self):
        tb = TraceBuilder()
        tb.set_function("blas_dot")
        a = tb.int_op(0)
        b = tb.fp_add(1, dep1=tb.dep_to(a))
        trace = tb.build()
        sub = trace.slice(1, 2)
        assert sub.dep1[0] == 0  # dependency crossed the cut

    def test_concat(self):
        tb1 = TraceBuilder(); tb1.set_function("blas_dot"); tb1.int_op(0)
        tb2 = TraceBuilder(); tb2.set_function("blas_dot"); tb2.fp_add(0)
        joined = tb1.build().concat(tb2.build())
        assert len(joined) == 2


class TestKernelTracers:
    def test_spmv_walks_every_nonzero(self):
        m = laplacian(10)
        tb = TraceBuilder()
        tk.trace_spmv(tb, m)
        trace = tb.build()
        # One fp_mul per nonzero.
        from repro.trace import FP_MUL
        assert int((trace.kind == FP_MUL).sum()) == m.nnz

    def test_spmv_row_stride_samples(self):
        m = laplacian(20)
        tb = TraceBuilder()
        tk.trace_spmv(tb, m, row_stride=4)
        trace = tb.build()
        full = TraceBuilder()
        tk.trace_spmv(full, m)
        assert len(trace) < len(full.build())

    def test_max_ops_respected(self):
        m = laplacian(50)
        tb = TraceBuilder()
        tk.trace_spmv(tb, m, max_ops=60)
        assert len(tb) < 120  # budget + at most one row overshoot

    def test_spin_wait_emits_pauses(self):
        tb = TraceBuilder()
        tk.trace_spin_wait(tb, 10)
        trace = tb.build()
        assert int((trace.kind == PAUSE).sum()) == 10

    def test_assembly_uses_real_connectivity(self):
        conn = np.array([[0, 1, 2, 3, 4, 5, 6, 7]])
        tb = TraceBuilder()
        tk.trace_element_assembly(tb, conn, node_count=8)
        trace = tb.build()
        loads = trace.addr[trace.kind == LOAD]
        assert loads.size > 8  # conn + coordinate gathers

    def test_contact_branch_outcomes_follow_mask(self):
        tb = TraceBuilder()
        mask = np.array([True, False, True, False])
        tk.trace_contact_search(tb, np.arange(4), np.arange(16), mask)
        trace = tb.build()
        gap_branches = trace.taken[trace.kind == BRANCH]
        assert gap_branches.sum() == 2

    def test_factorization_and_trisolve_emit(self):
        m = laplacian(16)
        tb = TraceBuilder()
        tk.trace_factorization(tb, m)
        tk.trace_trisolve(tb, m)
        trace = tb.build()
        assert int((trace.kind == STORE).sum()) > 0
        assert len(trace) > 50


class TestWorkloadTrace:
    def test_trace_budget_roughly_met(self):
        spec = get("ma26")
        trace, record = workload_trace(
            spec, TraceRequest(budget=20_000, scale="tiny"))
        assert 10_000 <= len(trace) <= 60_000
        assert record.converged

    def test_spin_weight_appears_as_pause_share(self):
        spec = get("ma28")  # highest spin weight in the suite
        trace, _ = workload_trace(
            spec, TraceRequest(budget=20_000, scale="tiny"))
        pause_share = (trace.kind == PAUSE).sum() / len(trace)
        assert pause_share > 0.08

    def test_contact_workload_traces_contact(self):
        spec = get("co")
        trace, _ = workload_trace(
            spec, TraceRequest(budget=20_000, scale="tiny"))
        contact_fid = func_id("contact_search")
        assert int((trace.func == contact_fid).sum()) > 0

    def test_rigid_workload_traces_kinematics(self):
        spec = get("rj")
        trace, _ = workload_trace(
            spec, TraceRequest(budget=20_000, scale="tiny"))
        fid = func_id("rigid_kinematics")
        assert int((trace.func == fid).sum()) > 0

    def test_deterministic(self):
        spec = get("te01")
        t1, _ = workload_trace(spec, TraceRequest(budget=10_000,
                                                  scale="tiny"))
        t2, _ = workload_trace(spec, TraceRequest(budget=10_000,
                                                  scale="tiny"))
        assert np.array_equal(t1.kind, t2.kind)
        assert np.array_equal(t1.addr, t2.addr)
        assert np.array_equal(t1.pc, t2.pc)
