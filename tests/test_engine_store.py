"""ResultStore: atomic writes, manifest index, concurrency, accounting."""

import json
import multiprocessing
import os

import pytest

from repro.engine.jobs import JobSpec, config_fingerprint, expand_grid
from repro.engine.store import ResultStore
from repro.uarch.config import gem5_baseline


# ----------------------------------------------------------------------
# JobSpec identity
# ----------------------------------------------------------------------
def test_jobspec_keys_and_grid():
    cfg = gem5_baseline()
    job = JobSpec("ar", cfg, label=3.0, scale="tiny", budget=4000)
    assert job.key().startswith("ar_tiny_4000_")
    assert job.legacy_key() == f"ar_tiny_4000_{cfg.digest()}"
    assert job.trace_key == ("ar", "tiny", 4000)

    jobs = expand_grid(("ar", "co"), [("a", cfg), ("b", cfg)], scale="tiny")
    assert [(j.workload, j.label) for j in jobs] == [
        ("ar", "a"), ("ar", "b"), ("co", "a"), ("co", "b")]


def test_jobspec_model_tiers_get_distinct_keys():
    cfg = gem5_baseline()
    cycle = JobSpec("ar", cfg, scale="tiny", budget=4000)
    interval = JobSpec("ar", cfg, scale="tiny", budget=4000,
                       model="interval")
    from repro.uarch.core import INTERVAL_VERSION

    assert cycle.model == "cycle"
    assert cycle.key() != interval.key()
    # Approximate tiers carry their model version in the key, so a
    # recalibration invalidates older cached results.
    assert interval.key().endswith(f"_interval-v{INTERVAL_VERSION}")
    # The cycle tier keeps the pre-tier key format (warm caches stay
    # valid) and only it may fall back to legacy digest-keyed files.
    assert not cycle.key().endswith("_cycle")
    assert cycle.legacy_key() is not None
    assert interval.legacy_key() is None
    assert interval.meta()["model"] == "interval"

    grid = expand_grid(("ar",), [("a", cfg)], model="interval")
    assert all(j.model == "interval" for j in grid)


def test_legacy_key_gated_by_digest_faithfulness():
    from repro.uarch.config import CacheConfig

    # Preset + digest-visible tweaks: the legacy fallback is safe.
    assert JobSpec("ar", gem5_baseline()).legacy_key() is not None
    assert JobSpec("ar", gem5_baseline(freq_ghz=2.0)).legacy_key() is not None
    assert JobSpec(
        "ar", gem5_baseline(l1i=CacheConfig(16, 8, 1))).legacy_key() is not None
    # Digest-omitted field tweaked: same digest as the baseline, so the
    # legacy file would be a different config's stats — refuse it.
    assert JobSpec(
        "ar", gem5_baseline(mem_latency_ns=120.0)).legacy_key() is None
    # A cache differing from the preset beyond its size is ambiguous
    # too (l2_sweep's L2 has hit_latency=14/uncore=0 vs the baseline's
    # 2cy + 4ns).
    assert JobSpec(
        "ar", gem5_baseline(l2=CacheConfig(512, 16, 14))).legacy_key() is None
    # Unknown preset name: no reference to validate against.
    assert JobSpec(
        "ar", gem5_baseline().with_changes(name="custom")).legacy_key() is None


def test_stale_legacy_entry_not_served_for_colliding_config(tmp_path):
    # A committed baseline cache file must not satisfy a config that
    # shares its digest but differs in a digest-omitted field.
    baseline_job = JobSpec("ar", gem5_baseline(), scale="tiny", budget=4000)
    stale = {"cycles": 1, "instructions": 1}
    (tmp_path / (baseline_job.legacy_key() + ".json")).write_text(
        json.dumps(stale))

    store = ResultStore(tmp_path)
    tweaked = JobSpec("ar", gem5_baseline(mem_latency_ns=120.0),
                      scale="tiny", budget=4000)
    assert store.get(tweaked.key(), tweaked.legacy_key()) is None
    # The honest baseline config still reuses it.
    assert store.get(baseline_job.key(), baseline_job.legacy_key()) == stale


def test_fingerprint_sees_fields_digest_misses():
    base = gem5_baseline()
    # mem_latency_ns is absent from the short digest() string but must
    # change the content hash.
    tweaked = gem5_baseline(mem_latency_ns=120.0)
    assert base.digest() == tweaked.digest()
    assert config_fingerprint(base) != config_fingerprint(tweaked)
    assert config_fingerprint(base) == config_fingerprint(gem5_baseline())


# ----------------------------------------------------------------------
# Store basics
# ----------------------------------------------------------------------
def test_put_get_roundtrip_and_manifest(tmp_path):
    store = ResultStore(tmp_path)
    payload = {"cycles": 123, "instructions": 456}
    store.put("k1", payload, meta={"workload": "ar"})

    assert store.get("k1") == payload
    with open(store.manifest_path) as fh:
        manifest = json.load(fh)
    assert manifest["entries"]["k1"]["workload"] == "ar"
    assert manifest["entries"]["k1"]["bytes"] > 0
    assert store.keys() == ["k1"]


def test_hit_miss_accounting_persists(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get("missing") is None
    store.put("k", {"x": 1})
    assert store.get("k") == {"x": 1}
    assert store.session_hits == 1 and store.session_misses == 1
    store.flush()

    # Cumulative counters survive a fresh handle (new process analog).
    fresh = ResultStore(tmp_path)
    s = fresh.stats()
    assert s["hits"] == 1 and s["misses"] == 1
    assert s["entries"] == 1
    assert fresh.session_hits == 0 and fresh.session_misses == 0


def test_legacy_file_adoption(tmp_path):
    # A pre-engine cache file sits under the digest()-based name only.
    legacy = tmp_path / "ar_tiny_4000_olddigest.json"
    legacy.write_text(json.dumps({"cycles": 7}))
    store = ResultStore(tmp_path)
    assert store.get("ar_tiny_4000_deadbeef", "ar_tiny_4000_olddigest") == {
        "cycles": 7}
    s = store.stats()
    assert s["hits"] == 1
    # Adopted in place: indexed under the new key, old file still there.
    assert "ar_tiny_4000_deadbeef" in store.keys()
    assert legacy.exists()
    assert s["unindexed_files"] == 0


def test_clear_resets_everything(tmp_path):
    store = ResultStore(tmp_path)
    store.put("a", {"x": 1})
    store.put("b", {"x": 2})
    store.get("a")
    removed = store.clear()
    assert removed == 2
    assert store.get("a") is None
    s = store.stats()
    assert s["entries"] == 0
    assert s["hits"] == 0  # counters reset with the manifest


# ----------------------------------------------------------------------
# LRU eviction (REPRO_CACHE_MAX_MB)
# ----------------------------------------------------------------------
def _fill(store, count, pad=40):
    for i in range(count):
        store.put(f"k{i}", {"v": i, "pad": "x" * pad})


def test_put_evicts_lru_beyond_cap(tmp_path):
    store = ResultStore(tmp_path, max_bytes=400)
    _fill(store, 10)
    s = store.stats()
    assert s["total_bytes"] <= 400
    assert s["evictions"] > 0
    # Newest entries survive; oldest were the victims.
    keys = store.keys()
    assert "k9" in keys and "k0" not in keys
    # Evicted payload files are gone from disk too.
    assert not (tmp_path / "k0.json").exists()
    assert s["unindexed_files"] == 0


def test_get_refreshes_lru_rank(tmp_path):
    store = ResultStore(tmp_path, max_bytes=400)
    _fill(store, 6)
    oldest_survivor = store.keys()[0]
    assert store.get(oldest_survivor) is not None  # refresh atime
    store.put("fresh", {"pad": "y" * 40})
    assert oldest_survivor in store.keys()


def test_cap_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", str(400 / (1024 * 1024)))
    store = ResultStore(tmp_path)
    assert store.max_bytes == 400
    _fill(store, 10)
    assert store.stats()["total_bytes"] <= 400
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "not-a-number")
    assert ResultStore(tmp_path).max_bytes is None


def test_uncapped_store_never_evicts(tmp_path):
    store = ResultStore(tmp_path)
    _fill(store, 10)
    s = store.stats()
    assert s["entries"] == 10
    assert s["evictions"] == 0


def test_prune_explicit_cap(tmp_path):
    store = ResultStore(tmp_path)
    _fill(store, 10)
    before = store.stats()["total_bytes"]
    removed, freed = store.prune(max_mb=200 / (1024 * 1024))
    assert removed > 0 and freed > 0
    after = store.stats()["total_bytes"]
    assert after <= 200
    assert before - after == freed
    # No cap configured and none given: prune is a no-op.
    assert ResultStore(tmp_path).prune() == (0, 0)
    with pytest.raises(ValueError):
        store.prune(max_mb=0)


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def _hammer(root, worker_id, n):
    store = ResultStore(root)
    for i in range(n):
        # Every worker fights over one shared key and owns private ones.
        store.put("shared", {"worker": worker_id, "i": i})
        store.put(f"w{worker_id}_k{i}", {"worker": worker_id, "i": i})
        store.get("shared")
    store.flush()  # multiprocessing children skip atexit handlers


def test_concurrent_writers_leave_valid_manifest(tmp_path):
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    n_workers, n_iters = 4, 8
    procs = [
        ctx.Process(target=_hammer, args=(str(tmp_path), w, n_iters))
        for w in range(n_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0

    store = ResultStore(tmp_path)
    with open(store.manifest_path) as fh:
        manifest = json.load(fh)  # must parse: no torn writes
    # The contested key holds one complete payload from some writer.
    winner = store.get("shared")
    assert set(winner) == {"worker", "i"}
    s = store.stats()
    assert s["entries"] == n_workers * n_iters + 1
    # Every get() across every process was counted (the +1 is the
    # winner-check get above; the manifest snapshot predates it).
    assert s["hits"] + s["misses"] == n_workers * n_iters + 1
    assert manifest["counters"]["hits"] + manifest["counters"]["misses"] == (
        n_workers * n_iters)
    assert s["unindexed_files"] == 0
    assert not [f for f in os.listdir(tmp_path) if ".tmp." in f]


def _hammer_capped(root, worker_id, n):
    # Capped store: every put() may evict concurrently with the others'.
    os.environ["REPRO_CACHE_MAX_MB"] = str(1200 / (1024 * 1024))
    store = ResultStore(root)
    assert store.max_bytes == 1200
    for i in range(n):
        store.put(f"w{worker_id}_k{i}",
                  {"worker": worker_id, "i": i, "pad": "x" * 64})
        store.get(f"w{worker_id}_k{i}")
    store.flush()


def test_lru_eviction_races_concurrent_puts(tmp_path):
    """REPRO_CACHE_MAX_MB + pool-style concurrent put(): one worker's
    eviction pass runs while others are mid-put.  Whatever the
    interleaving, the manifest must parse, every indexed entry's
    payload file must exist and hold valid JSON, every surviving file
    must be indexed (no orphans the index forgot), and the indexed
    total must respect the cap."""
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    n_workers, n_iters = 4, 12
    procs = [
        ctx.Process(target=_hammer_capped, args=(str(tmp_path), w, n_iters))
        for w in range(n_workers)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0

    store = ResultStore(tmp_path)
    with open(store.manifest_path) as fh:
        manifest = json.load(fh)  # must parse: no torn writes
    entries = manifest["entries"]
    assert manifest["counters"]["evictions"] > 0  # the race happened
    # Entry <-> file consistency in both directions.
    for key, entry in entries.items():
        path = tmp_path / entry["file"]
        assert path.exists(), f"indexed entry {key} lost its payload"
        payload = json.loads(path.read_text())
        assert payload["worker"] == int(key[1:].split("_")[0])
    on_disk = {f for f in os.listdir(tmp_path)
               if f.endswith(".json") and f != "manifest.json"}
    indexed = {e["file"] for e in entries.values()}
    assert on_disk == indexed, (
        f"orphans: {on_disk - indexed}, ghosts: {indexed - on_disk}")
    assert sum(e.get("bytes", 0) for e in entries.values()) <= 1200
    assert not [f for f in os.listdir(tmp_path) if ".tmp." in f]


# ----------------------------------------------------------------------
# Canonicalization determinism (config_fingerprint)
# ----------------------------------------------------------------------
class _Slotted:
    __slots__ = ("a", "b")

    def __init__(self, a, b):
        self.a = a
        self.b = b


class _SlottedChild(_Slotted):
    __slots__ = ("c",)

    def __init__(self, a, b, c):
        super().__init__(a, b)
        self.c = c


class _Opaque:
    __slots__ = ()


def test_fingerprint_deterministic_for_slotted_objects():
    """Regression: slotted objects used to fall through to repr(),
    whose default form embeds the instance memory address — two
    processes fingerprinting equal configs disagreed."""
    cfg_a = gem5_baseline()
    cfg_b = gem5_baseline()
    cfg_a.probe = _SlottedChild(1, "x", 2.5)
    cfg_b.probe = _SlottedChild(1, "x", 2.5)
    assert config_fingerprint(cfg_a) == config_fingerprint(cfg_b)
    # Slot values are visible, not just the type name.
    cfg_b.probe = _SlottedChild(1, "x", 99.0)
    assert config_fingerprint(cfg_a) != config_fingerprint(cfg_b)


def test_fingerprint_scrubs_addresses_from_repr_fallback():
    from repro.engine.jobs import _canonical

    # No __dict__, no slots with values: falls back to repr, which must
    # not leak the per-process address.
    one, two = _Opaque(), _Opaque()
    assert _canonical(one) == _canonical(two)
    assert "0x0" in _canonical(one) and hex(id(one)) not in _canonical(one)
    # Slotted objects canonicalize as field dicts across the MRO.
    assert _canonical(_SlottedChild(1, "x", 2.5)) == {
        "a": 1, "b": "x", "c": 2.5}


def test_deferred_put_batches_manifest_writes(tmp_path):
    store = ResultStore(tmp_path)
    for i in range(3):
        store.put(f"d{i}", {"x": i}, meta={"workload": "ar"}, defer=True)
    # Payloads are immediately durable and readable ...
    assert store.get("d1") == {"x": 1}
    # ... but the manifest has not been written yet.
    assert not os.path.exists(store.manifest_path)
    store.flush()
    with open(store.manifest_path) as fh:
        manifest = json.load(fh)
    assert set(manifest["entries"]) == {"d0", "d1", "d2"}
    assert manifest["entries"]["d2"]["workload"] == "ar"
    assert manifest["entries"]["d2"]["bytes"] > 0


def test_deferred_put_ignored_on_capped_store(tmp_path):
    # Eviction must observe every entry synchronously: with a cap the
    # defer flag falls back to the locked per-put path.
    store = ResultStore(tmp_path, max_bytes=10_000_000)
    store.put("k", {"x": 1}, defer=True)
    with open(store.manifest_path) as fh:
        manifest = json.load(fh)
    assert "k" in manifest["entries"]


def test_index_deferred_registers_foreign_write(tmp_path):
    writer = ResultStore(tmp_path)
    writer.put("w1", {"x": 1}, defer=True)  # e.g. a pool worker
    del writer

    parent = ResultStore(tmp_path)
    parent.index_deferred("w1", meta={"workload": "ar"})
    parent.flush()
    s = ResultStore(tmp_path).stats()
    assert s["entries"] == 1 and s["unindexed_files"] == 0


def test_index_deferred_evicted_before_fold_leaves_no_dangling_entry(
        tmp_path):
    """Regression: a deferred payload evicted between its write and the
    parent's manifest fold must not be resurrected as a manifest entry
    whose file is gone (a 'ghost' the LRU consistency test forbids)."""
    parent = ResultStore(tmp_path)
    worker = ResultStore(tmp_path)
    worker.put("victim", {"x": 1, "pad": "x" * 40}, defer=True)
    parent.index_deferred("victim", meta={"workload": "ar"})
    parent.index_deferred("survivor", meta={"workload": "co"})
    worker.put("survivor", {"x": 2, "pad": "y" * 40}, defer=True)
    del worker

    # A concurrent capped writer evicts the victim's payload before the
    # parent folds its batch (same effect as `repro cache prune`).
    evictor = ResultStore(tmp_path, max_bytes=150)
    evictor.put("newer", {"x": 3, "pad": "z" * 40})
    assert not (tmp_path / "victim.json").exists()

    parent.flush()
    with open(parent.manifest_path) as fh:
        manifest = json.load(fh)
    entries = manifest["entries"]
    assert "victim" not in entries, "dangling entry for an evicted payload"
    on_disk = {f for f in os.listdir(tmp_path)
               if f.endswith(".json") and f != "manifest.json"}
    indexed = {e["file"] for e in entries.values()}
    assert indexed <= on_disk, f"ghosts: {indexed - on_disk}"
    assert "survivor" in entries
