"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fem.loadcurve import LoadCurve
from repro.fem.materials import LinearElastic, NeoHookean
from repro.fem.solver import DenseLU
from repro.sparse import CSRMatrix, reverse_cuthill_mckee
from repro.trace import TraceBuilder
from repro.uarch import Cache, CacheConfig, make_predictor

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def coo_triplets(draw, max_n=12, max_nnz=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    k = draw(st.integers(min_value=0, max_value=max_nnz))
    rows = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    cols = draw(st.lists(st.integers(0, n - 1), min_size=k, max_size=k))
    vals = draw(st.lists(
        st.floats(-10, 10, allow_nan=False, allow_infinity=False),
        min_size=k, max_size=k))
    return n, rows, cols, vals


@st.composite
def spd_dense(draw, max_n=8):
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    A = rng.random((n, n)) * 0.3
    return 0.5 * (A + A.T) + np.eye(n) * n


# ---------------------------------------------------------------------------
# Sparse algebra properties
# ---------------------------------------------------------------------------


class TestCSRProperties:
    @given(coo_triplets())
    @settings(max_examples=40, deadline=None)
    def test_matvec_matches_dense(self, triplets):
        n, rows, cols, vals = triplets
        m = CSRMatrix.from_coo(n, rows, cols, vals)
        x = np.linspace(-1, 1, n)
        assert np.allclose(m.matvec(x), m.to_dense() @ x, atol=1e-9)

    @given(coo_triplets())
    @settings(max_examples=40, deadline=None)
    def test_double_transpose_identity(self, triplets):
        n, rows, cols, vals = triplets
        m = CSRMatrix.from_coo(n, rows, cols, vals)
        tt = m.transpose().transpose()
        assert np.allclose(tt.to_dense(), m.to_dense())

    @given(coo_triplets())
    @settings(max_examples=40, deadline=None)
    def test_indices_sorted_within_rows(self, triplets):
        n, rows, cols, vals = triplets
        m = CSRMatrix.from_coo(n, rows, cols, vals)
        for i in range(n):
            c, _ = m.row(i)
            assert np.all(np.diff(c) > 0)

    @given(coo_triplets())
    @settings(max_examples=30, deadline=None)
    def test_rcm_always_a_permutation(self, triplets):
        n, rows, cols, vals = triplets
        # Symmetrize the pattern so RCM's precondition holds.
        m = CSRMatrix.from_coo(
            n, rows + cols + list(range(n)), cols + rows + list(range(n)),
            [1.0] * (2 * len(rows)) + [1.0] * n)
        perm = reverse_cuthill_mckee(m)
        assert sorted(perm.tolist()) == list(range(n))


class TestSolverProperties:
    @given(spd_dense())
    @settings(max_examples=30, deadline=None)
    def test_dense_lu_solves_spd(self, A):
        n = A.shape[0]
        b = np.linspace(1, 2, n)
        x = DenseLU(A).solve(b)
        assert np.allclose(A @ x, b, atol=1e-8)


# ---------------------------------------------------------------------------
# Material properties
# ---------------------------------------------------------------------------


class TestMaterialProperties:
    @given(st.floats(0.1, 100.0), st.floats(-0.4, 0.45))
    @settings(max_examples=40, deadline=None)
    def test_linear_elastic_tangent_spd(self, E, nu):
        mat = LinearElastic(E=E, nu=nu)
        eigs = np.linalg.eigvalsh(mat._D)
        assert eigs.min() > 0

    @given(st.floats(-0.05, 0.05), st.floats(-0.05, 0.05),
           st.floats(-0.05, 0.05))
    @settings(max_examples=40, deadline=None)
    def test_neohookean_tangent_symmetric(self, a, b, c):
        mat = NeoHookean(E=1.0, nu=0.3)
        F = np.eye(3) + np.diag([a, b, c])
        _, DD, _ = mat.pk2_response(F.T @ F, {}, 0.1, 0.0)
        assert np.allclose(DD, DD.T, atol=1e-10)

    @given(st.floats(0.0, 2.0))
    @settings(max_examples=30, deadline=None)
    def test_load_curve_clamps_and_interpolates(self, t):
        lc = LoadCurve([0.0, 1.0], [0.0, 1.0])
        v = lc(t)
        assert 0.0 <= v <= 1.0
        if t <= 1.0:
            assert np.isclose(v, t)


# ---------------------------------------------------------------------------
# Microarchitecture properties
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @given(st.lists(st.integers(0, 2**20), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cfg = CacheConfig(1, 2, 1)
        c = Cache(cfg)
        for a in addrs:
            c.access(a)
        for s in c._sets:
            assert len(s) <= cfg.assoc

    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_immediate_rereference_hits(self, addrs):
        c = Cache(CacheConfig(4, 4, 1))
        for a in addrs:
            c.access(a)
            assert c.access(a)  # immediate re-reference always hits

    @given(st.lists(st.integers(0, 2**16), min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_misses_never_exceed_accesses(self, addrs):
        c = Cache(CacheConfig(1, 2, 1))
        for a in addrs:
            c.access(a)
        assert 0 <= c.misses <= c.accesses


class TestPredictorProperties:
    @given(st.sampled_from(["local", "tournament", "ltage", "perceptron"]),
           st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=20, deadline=None)
    def test_predictors_never_crash_and_count(self, name, outcomes):
        bp = make_predictor(name)
        pc = 0x7000
        for taken in outcomes:
            pred = bp.predict(pc)
            bp.record(pred, taken)
            bp.update(pc, taken)
        assert bp.lookups == len(outcomes)
        assert 0 <= bp.mispredicts <= bp.lookups

    @given(st.sampled_from(["local", "tournament", "ltage", "perceptron"]))
    @settings(max_examples=8, deadline=None)
    def test_biased_branch_high_accuracy(self, name):
        bp = make_predictor(name)
        pc = 0x8000
        for i in range(500):
            pred = bp.predict(pc)
            bp.record(pred, True)
            bp.update(pc, True)
        assert bp.mispredict_rate < 0.05


class TestTraceProperties:
    @given(st.integers(1, 50))
    @settings(max_examples=20, deadline=None)
    def test_dependencies_point_backward(self, n):
        tb = TraceBuilder()
        tb.set_function("blas_dot")
        prev = None
        for i in range(n):
            dep = tb.dep_to(prev) if prev is not None else 0
            prev = tb.fp_add(0, dep1=dep)
        trace = tb.build()
        idx = np.arange(len(trace))
        assert np.all(trace.dep1 <= idx)
        assert np.all(trace.dep1 >= 0)
