"""Engine execution: serial/parallel parity, ordering, cache accounting."""

import pytest

from repro.core.runner import Runner
from repro.core.sweeps import frequency_sweep, l2_sweep
from repro.engine import (
    JobSpec,
    Progress,
    ResultStore,
    expand_grid,
    resolve_workers,
    run_jobs,
)
from repro.uarch.config import gem5_baseline

_WORKLOADS = ("ar", "co")
_FAST = dict(scale="tiny", budget=4000)


def _flatten(result):
    return {
        (w, label): m.as_dict()
        for w, by_label in result.items()
        for label, m in by_label.items()
    }


def test_resolve_workers(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_workers(None) == 2
    assert resolve_workers(4) == 4
    monkeypatch.setenv("REPRO_WORKERS", "garbage")
    assert resolve_workers(None) == 1


def test_run_jobs_orders_results_like_input(tmp_path):
    cfgs = [(f, gem5_baseline(freq_ghz=f)) for f in (3.0, 1.0, 2.0)]
    jobs = expand_grid(_WORKLOADS, cfgs, **_FAST)
    stats = run_jobs(jobs, workers=2, runner=Runner(cache_dir=tmp_path))
    assert len(stats) == len(jobs)
    for job, st in zip(jobs, stats):
        # Each result slot corresponds to its job's frequency.
        assert st.freq_ghz == pytest.approx(job.config.freq_ghz)


def test_parallel_sweeps_match_serial(tmp_path):
    serial_runner = Runner(cache_dir=tmp_path / "serial")
    par_runner = Runner(cache_dir=tmp_path / "par")

    for sweep, kwargs in (
        (frequency_sweep, dict(freqs=(2.0, 3.0))),
        (l2_sweep, dict(sizes_kb=(512, 1024))),
    ):
        serial = sweep(workloads=_WORKLOADS, runner=serial_runner,
                       workers=1, **kwargs, **_FAST)
        parallel = sweep(workloads=_WORKLOADS, runner=par_runner,
                         workers=2, **kwargs, **_FAST)
        assert _flatten(serial) == _flatten(parallel)


def test_cold_then_warm_hit_accounting(tmp_path):
    runner = Runner(cache_dir=tmp_path)
    kwargs = dict(workloads=_WORKLOADS, freqs=(2.0, 3.0), runner=runner,
                  workers=2, **_FAST)
    n_jobs = len(_WORKLOADS) * 2

    cold = frequency_sweep(**kwargs)
    s = ResultStore(tmp_path).stats()
    assert s["misses"] == n_jobs and s["hits"] == 0
    assert s["entries"] == n_jobs

    warm = frequency_sweep(**kwargs)
    s = ResultStore(tmp_path).stats()
    assert s["misses"] == n_jobs and s["hits"] == n_jobs
    assert _flatten(cold) == _flatten(warm)


def test_progress_counts_hits_and_runs(tmp_path):
    runner = Runner(cache_dir=tmp_path)
    kwargs = dict(workloads=("ar",), freqs=(2.0, 3.0), runner=runner,
                  workers=2, **_FAST)
    cold = Progress(0, enabled=False)
    frequency_sweep(progress=cold, **kwargs)
    assert cold.total == 2 and cold.done == 2
    assert cold.runs == 2 and cold.hits == 0

    warm = Progress(0, enabled=False)
    frequency_sweep(progress=warm, **kwargs)
    assert warm.done == 2 and warm.hits == 2 and warm.runs == 0


def test_serial_path_skips_store_when_disk_cache_off(tmp_path):
    runner = Runner(cache_dir=tmp_path, use_disk_cache=False)
    out = frequency_sweep(workloads=("ar",), freqs=(3.0,), runner=runner,
                          workers=1, **_FAST)
    assert out["ar"][3.0].ipc > 0
    assert not (tmp_path / "manifest.json").exists()


def test_run_jobs_honors_explicit_store_on_serial_path(tmp_path):
    # A single job takes the serial branch even with workers>1; the
    # result must land in the caller's store, not default_runner's.
    store = ResultStore(tmp_path / "mine")
    jobs = [JobSpec("ar", gem5_baseline(), label=3.0, **_FAST)]
    stats = run_jobs(jobs, workers=4, store=store)
    assert stats[0].cycles > 0
    assert store.stats()["entries"] == 1


def test_clear_disk_cache_resets_pending_store_state(tmp_path):
    runner = Runner(cache_dir=tmp_path)
    cfg = gem5_baseline()
    runner.stats_for("ar", cfg, **_FAST)   # miss + put
    runner.stats_for("ar", cfg, **_FAST)   # hit (pending, unflushed)
    runner.clear_disk_cache()
    runner.store.flush()
    s = runner.store.stats()
    # No resurrected counters or phantom adopted entries post-clear.
    assert s["entries"] == 0 and s["hits"] == 0 and s["misses"] == 0


def test_runner_shares_store_between_serial_and_engine(tmp_path):
    # A result computed by the plain Runner is a cache hit for the pool.
    runner = Runner(cache_dir=tmp_path)
    cfg = gem5_baseline(freq_ghz=2.0)
    runner.stats_for("ar", cfg, **_FAST)

    jobs = [JobSpec("ar", cfg, label=2.0, **_FAST)]
    stats = run_jobs(jobs, workers=2, runner=runner)
    s = ResultStore(tmp_path).stats()
    assert s["hits"] >= 1
    assert stats[0].freq_ghz == pytest.approx(2.0)


def test_capped_store_has_no_dangling_entries_after_parallel_run(tmp_path):
    # Workers on a size-capped store index (and evict) synchronously;
    # the parent must not resurrect evicted keys when it folds the
    # batch — every manifest entry must still have its payload file.
    import json
    import os

    store = ResultStore(tmp_path, max_bytes=2000)  # a few entries' worth
    cfgs = [(f, gem5_baseline(freq_ghz=f)) for f in (1.0, 2.0, 3.0)]
    jobs = expand_grid(_WORKLOADS, cfgs, **_FAST)
    stats = run_jobs(jobs, workers=2, store=store)
    assert len(stats) == len(jobs)
    store.flush()
    with open(store.manifest_path) as fh:
        manifest = json.load(fh)
    for key, entry in manifest["entries"].items():
        path = tmp_path / entry.get("file", key + ".json")
        assert os.path.exists(path), f"dangling manifest entry {key}"
