"""Tests for quadrature, shape functions, meshes, and generators."""

import numpy as np
import pytest

from repro.fem import (
    ElementBlock,
    Mesh,
    box_hex,
    box_tet,
    cylinder_shell_hex,
    perturbed_box_hex,
    spherical_shell_hex,
)
from repro.fem.quadrature import hex_rule, quad_rule, tet_rule
from repro.fem.shape import Hex8, Quad4, Tet4, element_class, jacobian


class TestQuadrature:
    def test_hex_rule_weights_sum_to_volume(self):
        assert np.isclose(hex_rule(2).weights.sum(), 8.0)
        assert np.isclose(hex_rule(1).weights.sum(), 8.0)

    def test_tet_rule_weights_sum_to_volume(self):
        assert np.isclose(tet_rule(1).weights.sum(), 1.0 / 6.0)
        assert np.isclose(tet_rule(2).weights.sum(), 1.0 / 6.0)

    def test_quad_rule_weights(self):
        assert np.isclose(quad_rule(2).weights.sum(), 4.0)

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            hex_rule(3)

    def test_hex_rule_integrates_quadratic_exactly(self):
        rule = hex_rule(2)
        total = sum(w * (xi[0] ** 2) for xi, w in rule)
        assert np.isclose(total, 8.0 / 3.0)


class TestShapeFunctions:
    @pytest.mark.parametrize("cls", [Hex8, Tet4, Quad4])
    def test_partition_of_unity(self, cls):
        xi = np.full(cls.ndim, 0.17)
        assert np.isclose(cls.values(xi).sum(), 1.0)

    @pytest.mark.parametrize("cls", [Hex8, Tet4, Quad4])
    def test_gradient_rows_sum_to_zero(self, cls):
        xi = np.full(cls.ndim, -0.2 if cls is not Tet4 else 0.2)
        assert np.allclose(cls.gradients(xi).sum(axis=0), 0.0)

    def test_hex8_kronecker_delta(self):
        for a, signs in enumerate(Hex8._signs):
            vals = Hex8.values(signs)
            expected = np.zeros(8)
            expected[a] = 1.0
            assert np.allclose(vals, expected)

    def test_jacobian_of_unit_cube(self):
        coords = (Hex8._signs + 1.0) / 2.0  # unit cube
        _, detJ, dN = jacobian(coords, Hex8.gradients(np.zeros(3)))
        assert np.isclose(detJ, 1.0 / 8.0)
        # Physical gradients reproduce linear fields exactly.
        f = coords @ np.array([2.0, 3.0, 4.0])
        grad = dN.T @ f
        assert np.allclose(grad, [2.0, 3.0, 4.0])

    def test_negative_jacobian_raises(self):
        coords = (Hex8._signs + 1.0) / 2.0
        mirrored = coords * np.array([-1.0, 1.0, 1.0])  # left-handed
        with pytest.raises(ValueError):
            jacobian(mirrored, Hex8.gradients(np.zeros(3)))

    def test_element_class_lookup(self):
        assert element_class("hex8") is Hex8
        with pytest.raises(KeyError):
            element_class("hex20")


def _all_jacobians_positive(mesh):
    for blk in mesh.blocks:
        cls = Hex8 if blk.elem_type == "hex8" else Tet4
        rule = hex_rule(2) if blk.elem_type == "hex8" else tet_rule(1)
        for conn in blk.connectivity:
            coords = mesh.nodes[conn]
            for xi, _ in rule:
                jacobian(coords, cls.gradients(xi))
    return True


class TestMeshGenerators:
    def test_box_hex_counts(self):
        mesh = box_hex(2, 3, 4)
        assert mesh.nnodes == 3 * 4 * 5
        assert mesh.nelem == 24

    def test_box_tet_counts(self):
        mesh = box_tet(2, 2, 2)
        assert mesh.nelem == 8 * 6

    def test_box_volume_via_jacobians(self):
        mesh = box_hex(3, 3, 3, 2.0, 1.0, 1.0)
        vol = 0.0
        for conn in mesh.blocks[0].connectivity:
            coords = mesh.nodes[conn]
            for xi, w in hex_rule(2):
                _, detJ, _ = jacobian(coords, Hex8.gradients(xi))
                vol += w * detJ
        assert np.isclose(vol, 2.0)

    @pytest.mark.parametrize("builder", [
        lambda: box_hex(3, 3, 3),
        lambda: box_tet(2, 3, 2),
        lambda: perturbed_box_hex(4, 4, 4, amplitude=0.2, seed=1),
        lambda: cylinder_shell_hex(8, 2, 3),
        lambda: spherical_shell_hex(4, 8, 2),
    ])
    def test_generators_produce_valid_elements(self, builder):
        assert _all_jacobians_positive(builder())

    def test_perturbed_box_keeps_surface(self):
        mesh = perturbed_box_hex(3, 3, 3, amplitude=0.25, seed=2)
        ref = box_hex(3, 3, 3)
        surface = mesh.surface_nodes()
        assert np.allclose(mesh.nodes[surface], ref.nodes[surface])

    def test_perturbed_box_deterministic(self):
        a = perturbed_box_hex(3, 3, 3, seed=9).nodes
        b = perturbed_box_hex(3, 3, 3, seed=9).nodes
        assert np.array_equal(a, b)

    def test_cylinder_radius_range(self):
        mesh = cylinder_shell_hex(8, 2, 2, r_inner=1.0, r_outer=1.5)
        r = np.linalg.norm(mesh.nodes[:, :2], axis=1)
        assert r.min() >= 1.0 - 1e-9
        assert r.max() <= 1.5 + 1e-9


class TestMesh:
    def test_boundary_faces_of_unit_box(self):
        mesh = box_hex(2, 2, 2)
        faces = mesh.boundary_faces()
        assert len(faces) == 6 * 4  # 4 faces per side

    def test_surface_nodes_of_box(self):
        mesh = box_hex(2, 2, 2)
        assert mesh.surface_nodes().size == 27 - 1  # all but center node

    def test_nodes_on_plane(self):
        mesh = box_hex(2, 2, 2)
        assert mesh.nodes_on_plane(2, 0.0).size == 9

    def test_nodes_where(self):
        mesh = box_hex(2, 2, 2)
        sel = mesh.nodes_where(lambda x, y, z: (x > 0.9) & (z < 0.1))
        assert sel.size == 3

    def test_block_validation(self):
        mesh = Mesh(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            mesh.add_block(
                ElementBlock("b", "tet4", np.array([[0, 1, 2, 9]]), "m")
            )

    def test_block_lookup(self):
        mesh = box_hex(1, 1, 1, name="solo")
        assert mesh.block("solo").nelem == 1
        with pytest.raises(KeyError):
            mesh.block("nope")

    def test_bounding_box(self):
        mesh = box_hex(1, 1, 1, 2.0, 3.0, 4.0)
        lo, hi = mesh.bounding_box()
        assert np.allclose(lo, 0.0)
        assert np.allclose(hi, [2.0, 3.0, 4.0])
