"""repro.analysis: per-rule fixtures, baseline semantics, CLI contract.

Each rule gets a violating and a clean fixture built as a tiny on-disk
repo tree (``src/repro`` layout, KNOBS registry, telemetry names,
README), so the tests exercise the real load-parse-check path rather
than hand-built ASTs.  The suite also pins the parts CI consumes: exit
codes, the ``--json`` schema, shrink-only baseline semantics, and the
self-check that the shipped tree lints clean with an empty baseline.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    RULES,
    lint_result,
    partition,
    run_lint,
)
from repro.analysis.autofix import fix_module
from repro.analysis.cli import main as lint_main
from repro.__main__ import main as repro_main


# ----------------------------------------------------------------------
# Fixture repo: the smallest tree that satisfies every rule.

BASE_FILES = {
    "README.md": textwrap.dedent("""\
        # fixture

        | Knob | Meaning |
        |---|---|
        | `REPRO_WORKERS` | worker process count |
        """),
    "src/repro/__init__.py": "",
    "src/repro/env.py": textwrap.dedent("""\
        import os

        KNOBS = {
            "REPRO_WORKERS": "worker process count",
        }


        def env_str(name, default=""):
            return os.environ.get(name, default)
        """),
    "src/repro/telemetry/__init__.py":
        "from .names import METRIC_NAMES, SPAN_NAMES\n",
    "src/repro/telemetry/names.py": textwrap.dedent("""\
        SPAN_NAMES = ("job",)
        METRIC_NAMES = ("repro_jobs_total",)
        """),
    "src/repro/engine/__init__.py": "",
    "src/repro/engine/jobs.py": textwrap.dedent("""\
        from ..env import env_str

        WORKERS_ENV = "REPRO_WORKERS"


        def config_fingerprint(config):
            return ",".join(sorted(config)) + env_str(WORKERS_ENV)
        """),
    "src/repro/engine/pool.py": "def run_pool():\n    return 0\n",
    "src/repro/uarch/__init__.py": "",
    "src/repro/uarch/config.py": "WIDTH = 4\n",
}


def write_tree(root, files):
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)


@pytest.fixture
def repo(tmp_path):
    write_tree(tmp_path, BASE_FILES)
    return tmp_path


def lint(root, select=None):
    _project, findings = run_lint(str(root), select=select)
    return findings


def codes(findings):
    return sorted({f.code for f in findings})


# ----------------------------------------------------------------------
# The base fixture is clean; every violation below is one mutation.

def test_base_fixture_is_clean(repo):
    assert lint(repo) == []


def test_unparsable_module_reports_rpr000(repo):
    (repo / "src/repro/broken.py").write_text("def oops(:\n")
    findings = lint(repo)
    assert codes(findings) == ["RPR000"]
    assert findings[0].path == "src/repro/broken.py"


# One (name, extra/overridden files, expected code, message fragment)
# row per rule — the seeded-violation half of the acceptance criteria.
VIOLATIONS = [
    ("rpr001-environ-get", {
        "src/repro/misc.py":
            'import os\n\nVAL = os.environ.get("REPRO_WORKERS", "")\n',
    }, "RPR001", "direct environment access"),
    ("rpr001-from-import", {
        "src/repro/misc.py":
            "from os import environ\n\nVAL = environ\n",
    }, "RPR001", "direct environment access"),
    ("rpr002-undeclared", {
        "src/repro/misc.py": 'SECRET_ENV = "REPRO_SECRET"\n',
    }, "RPR002", "undeclared knob REPRO_SECRET"),
    ("rpr002-undocumented", {
        "src/repro/env.py": textwrap.dedent("""\
            import os

            KNOBS = {
                "REPRO_WORKERS": "worker process count",
                "REPRO_EXTRA": "declared but not in the README",
            }


            def env_str(name, default=""):
                return os.environ.get(name, default)
            """),
        "src/repro/misc.py": 'EXTRA_ENV = "REPRO_EXTRA"\n',
    }, "RPR002", "not documented in the README"),
    ("rpr002-dead", {
        "README.md": "`REPRO_WORKERS` and `REPRO_DEAD`\n",
        "src/repro/env.py": textwrap.dedent("""\
            import os

            KNOBS = {
                "REPRO_WORKERS": "worker process count",
                "REPRO_DEAD": "documented, never referenced",
            }


            def env_str(name, default=""):
                return os.environ.get(name, default)
            """),
    }, "RPR002", "dead knob"),
    ("rpr003-wall-clock", {
        "src/repro/engine/jobs.py": textwrap.dedent("""\
            import time

            WORKERS_ENV = "REPRO_WORKERS"


            def config_fingerprint(config):
                return str(time.time())
            """),
    }, "RPR003", "time.time() is nondeterministic"),
    ("rpr003-repr", {
        "src/repro/engine/jobs.py": textwrap.dedent("""\
            WORKERS_ENV = "REPRO_WORKERS"


            def config_fingerprint(config):
                return repr(config)
            """),
    }, "RPR003", "process-dependent"),
    ("rpr003-set-order", {
        "src/repro/engine/jobs.py": textwrap.dedent("""\
            WORKERS_ENV = "REPRO_WORKERS"


            def config_fingerprint(config):
                return ",".join({str(k) for k in config})
            """),
    }, "RPR003", "arbitrary order"),
    ("rpr004-telemetry-import", {
        "src/repro/engine/jobs.py": textwrap.dedent("""\
            from .. import telemetry

            WORKERS_ENV = "REPRO_WORKERS"


            def config_fingerprint(config):
                return "x"
            """),
    }, "RPR004", "imports repro.telemetry"),
    ("rpr004-backend-in-key", {
        "src/repro/misc.py": textwrap.dedent("""\
            def store_key(job):
                return job.backend_name
            """),
    }, "RPR004", "key constructor store_key()"),
    ("rpr005-module-thread", {
        "src/repro/engine/pool.py": textwrap.dedent("""\
            import threading

            _watchdog = threading.Thread(target=list)
            _watchdog.start()
            """),
    }, "RPR005", "module-level"),
    ("rpr005-module-open", {
        "src/repro/engine/pool.py":
            '_log = open("/tmp/fixture-pool.log", "a")\n',
    }, "RPR005", "module-level open()"),
    ("rpr006-silent-swallow", {
        "src/repro/misc.py": textwrap.dedent("""\
            def load(path):
                try:
                    return int(path)
                except Exception:
                    pass
                return 0
            """),
    }, "RPR006", "silently swallows"),
    ("rpr006-bare-except", {
        "src/repro/misc.py": textwrap.dedent("""\
            def load(path):
                try:
                    return int(path)
                except:
                    return 0
            """),
    }, "RPR006", "bare except"),
    ("rpr007-undeclared-metric", {
        "src/repro/misc.py": textwrap.dedent("""\
            def bump(registry):
                registry.counter("repro_bogus_total").inc()
            """),
    }, "RPR007", "not declared in telemetry/names.py"),
    ("rpr007-undeclared-span", {
        "src/repro/misc.py": textwrap.dedent("""\
            def traced(telemetry, fn):
                with telemetry.span("bogus-span"):
                    return fn()
            """),
    }, "RPR007", "not declared in telemetry/names.py"),
]


@pytest.mark.parametrize(
    "files,code,fragment",
    [v[1:] for v in VIOLATIONS],
    ids=[v[0] for v in VIOLATIONS])
def test_seeded_violation_is_caught(repo, files, code, fragment):
    write_tree(repo, files)
    findings = lint(repo)
    assert codes(findings) == [code]
    assert any(fragment in f.message for f in findings)
    # ...and the CLI exits non-zero on it.
    assert lint_main(["--root", str(repo)]) == 1


def test_function_local_thread_and_handled_except_are_clean(repo):
    # The clean counterparts of RPR005/RPR006: per-call threads and a
    # broad handler that acts (calls something) are both fine.
    write_tree(repo, {
        "src/repro/engine/pool.py": textwrap.dedent("""\
            import threading


            def run_pool(target):
                worker = threading.Thread(target=target)
                worker.start()
                return worker
            """),
        "src/repro/misc.py": textwrap.dedent("""\
            def load(path, warn):
                try:
                    return int(path)
                except Exception as exc:
                    warn(str(exc))
                return 0
            """),
    })
    assert lint(repo) == []


def test_nondeterminism_outside_fingerprint_closure_is_clean(repo):
    # time.time() is only banned where fingerprint bytes can flow;
    # a module the seeds never import may use it freely.
    write_tree(repo, {
        "src/repro/misc.py":
            "import time\n\n\ndef stamp():\n    return time.time()\n",
    })
    assert lint(repo) == []


def test_noqa_suppresses_on_the_flagged_line(repo):
    write_tree(repo, {
        "src/repro/misc.py":
            'import os\n\nVAL = os.environ.get("REPRO_WORKERS")'
            "  # repro: noqa[RPR001] bootstrap read\n",
    })
    assert lint(repo) == []


def test_noqa_other_code_does_not_suppress(repo):
    write_tree(repo, {
        "src/repro/misc.py":
            'import os\n\nVAL = os.environ.get("REPRO_WORKERS")'
            "  # repro: noqa[RPR006] wrong code\n",
    })
    assert codes(lint(repo)) == ["RPR001"]


def test_select_restricts_rules(repo):
    write_tree(repo, {
        "src/repro/misc.py":
            'import os\n\nVAL = os.environ.get("REPRO_WORKERS")\n',
    })
    assert lint(repo, select={"RPR006"}) == []
    assert codes(lint(repo, select={"RPR001"})) == ["RPR001"]


# ----------------------------------------------------------------------
# Baseline: line-independent identity, shrink-only rewrites.

VIOLATING_MISC = ('import os\n\n'
                  'VAL = os.environ.get("REPRO_WORKERS", "")\n')


def test_baselined_finding_does_not_fail(repo):
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    _project, findings = run_lint(str(repo))
    baseline = Baseline.load(str(repo))
    baseline.save(findings)
    new, baselined, stale = partition(findings, baseline)
    assert new == [] and len(baselined) == 1 and stale == []
    assert lint_main(["--root", str(repo)]) == 0


def test_baseline_survives_unrelated_edits(repo):
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    _project, findings = run_lint(str(repo))
    baseline = Baseline.load(str(repo))
    baseline.save(findings)
    # Push the violation down two lines: same fingerprint, new lineno.
    write_tree(repo, {
        "src/repro/misc.py": "# moved\n# moved again\n" + VIOLATING_MISC,
    })
    _project, findings = run_lint(str(repo))
    new, baselined, stale = partition(findings, baseline)
    assert new == [] and len(baselined) == 1
    assert baselined[0].line > 3


def test_fixed_finding_is_pruned_and_not_rebaselineable(repo):
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    _project, findings = run_lint(str(repo))
    baseline = Baseline.load(str(repo))
    baseline.save(findings)
    fingerprint = findings[0].fingerprint

    # Fix the violation: the entry goes stale...
    write_tree(repo, {"src/repro/misc.py": "VAL = ''\n"})
    _project, findings = run_lint(str(repo))
    new, baselined, stale = partition(findings, baseline)
    assert findings == [] and len(stale) == 1
    # ...and a --baseline rewrite prunes it (shrink-only: saves only
    # live findings, never resurrects entries).
    baseline.save(findings)
    assert baseline.entries == {}
    reloaded = Baseline.load(str(repo))
    assert fingerprint not in reloaded.entries

    # Reintroducing the same violation is a fresh failure.
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    _project, findings = run_lint(str(repo))
    new, _baselined, _stale = partition(findings, reloaded)
    assert len(new) == 1 and new[0].fingerprint == fingerprint
    assert lint_main(["--root", str(repo)]) == 1


def test_missing_baseline_file_is_empty(repo):
    baseline = Baseline.load(str(repo))
    assert baseline.entries == {}


def test_finding_identity_excludes_line():
    a = Finding("RPR001", "src/repro/x.py", 3, "msg")
    b = Finding("RPR001", "src/repro/x.py", 99, "msg")
    c = Finding("RPR002", "src/repro/x.py", 3, "msg")
    assert a == b and a.fingerprint == b.fingerprint
    assert a != c


# ----------------------------------------------------------------------
# CLI contract: exit codes, --json schema, --baseline, repro lint.

def test_cli_exit_codes(repo, capsys):
    assert lint_main(["--root", str(repo)]) == 0
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    assert lint_main(["--root", str(repo)]) == 1
    assert lint_main(["--root", str(repo), "--select", "RPR999"]) == 2
    assert lint_main(["--root", str(repo), "--select", "RPR006"]) == 0
    capsys.readouterr()


def test_cli_json_schema(repo, capsys):
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    rc = lint_main(["--root", str(repo), "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert doc["version"] == 1
    assert sorted(doc) == ["baselined", "counts", "new", "ok", "root",
                           "rules", "stale_baseline", "version"]
    assert sorted(doc["rules"]) == sorted(RULES)
    for code, entry in doc["rules"].items():
        assert entry["name"] and entry["summary"]
    assert doc["counts"] == {"new": 1, "baselined": 0,
                             "stale_baseline": 0}
    assert doc["ok"] is False
    (finding,) = doc["new"]
    assert sorted(finding) == ["code", "fingerprint", "line",
                               "message", "path"]
    assert finding["code"] == "RPR001"
    assert finding["path"] == "src/repro/misc.py"


def test_cli_baseline_flag_writes_and_greens(repo, capsys):
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    assert lint_main(["--root", str(repo), "--baseline"]) == 0
    assert (repo / "lint-baseline.json").exists()
    assert lint_main(["--root", str(repo)]) == 0
    capsys.readouterr()


def test_repro_lint_subcommand_forwards(repo, capsys):
    assert repro_main(["lint", "--root", str(repo)]) == 0
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    assert repro_main(["lint", "--root", str(repo)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out


# ----------------------------------------------------------------------
# --fix: the mechanical os.environ.get -> env_str rewrite.

def test_fix_rewrites_declared_literal_get(repo, capsys):
    write_tree(repo, {"src/repro/misc.py": VIOLATING_MISC})
    assert lint_main(["--root", str(repo), "--fix"]) == 0
    fixed = (repo / "src/repro/misc.py").read_text()
    assert 'env_str("REPRO_WORKERS", "")' in fixed
    assert "from repro.env import env_str" in fixed
    assert "os.environ" not in fixed
    assert lint(repo) == []
    capsys.readouterr()


def test_fix_skips_undeclared_knob(repo, capsys):
    source = 'import os\n\nVAL = os.environ.get("REPRO_SECRET")\n'
    write_tree(repo, {"src/repro/misc.py": source})
    # Undeclared: a human must name and document the knob first, so
    # --fix leaves the site alone and the run still fails.
    assert lint_main(["--root", str(repo), "--fix"]) == 1
    assert (repo / "src/repro/misc.py").read_text() == source
    capsys.readouterr()


def test_fix_skips_non_literal_and_non_repro_reads(repo):
    source = textwrap.dedent("""\
        import os

        A = os.environ.get(NAME)
        B = os.environ.get("HOME")
        """)
    write_tree(repo, {"src/repro/misc.py": source})
    project, _findings = run_lint(str(repo))
    module = project.modules["repro.misc"]
    assert fix_module(module, {"REPRO_WORKERS": 1}, "repro") is None


# ----------------------------------------------------------------------
# Self-check: the tree this test suite ships in lints clean.

def test_shipped_tree_reports_no_new_findings():
    result = lint_result()
    assert result.new == [], "\n".join(
        f.render() for f in result.new)


def test_shipped_baseline_is_empty():
    result = lint_result()
    assert result.baselined == [] and result.stale == []
    assert result.findings == []
