"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    return tmp_path


def test_sweep_then_cache_stats(cache_dir, capsys):
    rc = main(["sweep", "l2", "--workloads", "ar", "--scale", "tiny",
               "--budget", "4000", "--workers", "2", "--quiet",
               "--metric", "ipc"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "l2 sweep" in out and "ar" in out

    rc = main(["cache", "stats"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "entries (indexed)" in out
    # Four L2 sizes for one workload, all cold.
    assert any("4" in line for line in out.splitlines()
               if "entries (indexed)" in line)
    assert any("4" in line for line in out.splitlines()
               if "misses" in line)


def test_cache_clear(cache_dir, capsys):
    main(["run", "ar", "--scale", "tiny", "--budget", "4000"])
    capsys.readouterr()
    rc = main(["cache", "clear"])
    assert rc == 0
    assert "cleared 1 entries" in capsys.readouterr().out


def test_run_reports_metrics(cache_dir, capsys):
    rc = main(["run", "ar", "--scale", "tiny", "--budget", "4000",
               "--freq-ghz", "2.0", "--no-cache"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "ipc" in out and "top-down" in out
    # --no-cache must leave the store untouched.
    assert not (cache_dir / "manifest.json").exists()


def test_list_and_bad_workload(cache_dir, capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "frequency" in out and "ar" in out and "fig9" in out

    rc = main(["sweep", "l2", "--workloads", "nope", "--scale", "tiny",
               "--budget", "4000", "--quiet"])
    assert rc == 2


def test_characterize_subcommand(cache_dir, capsys):
    rc = main(["characterize", "ar", "co", "--scale", "tiny",
               "--budget", "2000", "--workers", "2", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "characterization" in out and "ar" in out and "co" in out
    assert "ipc" in out
    rc = main(["characterize", "nope", "--scale", "tiny", "--quiet"])
    assert rc == 2


def test_characterize_interval_tier(cache_dir, capsys):
    rc = main(["characterize", "ar", "--scale", "tiny", "--budget", "2000",
               "--model", "interval", "--gem5", "--quiet"])
    assert rc == 0
    assert "model=interval" in capsys.readouterr().out
    # Cached under the tier-suffixed, model-versioned key.
    assert any("_interval-v" in f.name for f in cache_dir.iterdir())


def test_figures_subcommand_writes_json(cache_dir, capsys, tmp_path):
    import json as jsonlib

    out_path = tmp_path / "fig7.json"
    rc = main(["figures", "fig7", "--scale", "tiny", "--model", "interval",
               "--quiet", "--out", str(out_path)])
    assert rc == 0
    data = jsonlib.loads(out_path.read_text())
    assert set(data) == {"fetch", "execute", "commit"}
    assert len(data["fetch"]) == 6

    rc = main(["figures", "fig7", "--scale", "tiny", "--model", "interval",
               "--quiet"])
    assert rc == 0
    printed = jsonlib.loads(capsys.readouterr().out)
    assert printed == data


def test_sweep_interval_model(cache_dir, capsys):
    rc = main(["sweep", "l2", "--workloads", "ar", "--scale", "tiny",
               "--budget", "4000", "--model", "interval", "--quiet"])
    assert rc == 0
    assert "model=interval" in capsys.readouterr().out


def test_cache_prune_subcommand(cache_dir, capsys):
    main(["sweep", "l2", "--workloads", "ar", "--scale", "tiny",
          "--budget", "4000", "--quiet"])
    capsys.readouterr()
    # No cap anywhere: refuse rather than silently no-op.
    rc = main(["cache", "prune"])
    assert rc == 2
    rc = main(["cache", "prune", "--max-mb", "0.0001"])
    assert rc == 0
    assert "pruned" in capsys.readouterr().out
    rc = main(["cache", "stats"])
    assert rc == 0
    assert "evictions" in capsys.readouterr().out


def test_sweep_adaptive_policy(cache_dir, capsys):
    # Explicit --cache-dir: the default path would reuse the process-
    # global runner, whose store was pinned by an earlier test's tmpdir.
    rc = main(["--cache-dir", str(cache_dir),
               "sweep", "l2", "--workloads", "ar", "--scale", "tiny",
               "--budget", "4000", "--policy", "adaptive", "--quiet",
               "--metric", "seconds"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "model=adaptive" in out
    assert "cells cycle-refined" in out and "cycle jobs run" in out
    # Mixed store: tier-suffixed interval keys next to plain cycle keys.
    names = [f.name for f in cache_dir.iterdir() if f.suffix == ".json"
             and f.name != "manifest.json"]
    assert any("_interval-v" in n for n in names)
    assert any("_interval-v" not in n for n in names)


def test_study_subcommand(cache_dir, capsys):
    rc = main(["study", "l2_kb=256,512", "--workloads", "ar,co",
               "--scale", "tiny", "--budget", "4000", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "l2_kb[2]" in out and "best seconds per workload" in out
    assert "ar" in out and "co" in out

    # Multi-axis grid with an explicit metric and adaptive policy.
    rc = main(["study", "l2_kb=256,512", "freq_ghz=2,3",
               "--workloads", "ar", "--scale", "tiny", "--budget", "4000",
               "--metric", "ipc", "--policy", "adaptive", "--quiet"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "l2_kb[2] x freq_ghz[2]" in out
    assert "tier" in out


def test_study_rejects_bad_axis(cache_dir, capsys):
    rc = main(["study", "warp_factor=9", "--quiet"])
    assert rc == 2
    assert "unknown axis" in capsys.readouterr().err
