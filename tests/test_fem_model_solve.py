"""Integration tests of the nonlinear solver across element physics."""

import numpy as np
import pytest

from repro.fem import (
    BiphasicMaterial,
    FEModel,
    LinearElastic,
    NeoHookean,
    NewtonianFluid,
    NewtonError,
    RigidBody,
    RigidMaterial,
    RigidPlaneContact,
    StepSettings,
    box_hex,
    box_tet,
    ramp,
    solve_model,
)
from repro.fem.kernels import pressure_face_load, solid_element
from repro.fem.mesh import ElementBlock


def cantilever(nx=2, E=10.0, nu=0.3, load=-0.02, material=None):
    mesh = box_hex(nx, nx, nx)
    model = FEModel(mesh, name="cantilever")
    model.add_material(material or LinearElastic(E=E, nu=nu, name="mat"))
    model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
    model.add_nodal_load(mesh.nodes_on_plane(2, 1.0), "uz", load)
    model.finalize()
    return model


class TestElementKernels:
    def test_patch_rigid_translation_gives_zero_force(self):
        mesh = box_hex(1, 1, 1)
        coords = mesh.nodes[mesh.blocks[0].connectivity[0]]
        u = np.full((8, 3), 0.37)  # rigid translation
        mat = LinearElastic(E=1.0, nu=0.3)
        f, K, _ = solid_element(coords, u, mat, {}, 0.1, 0.0)
        assert np.allclose(f, 0.0, atol=1e-12)

    def test_stiffness_symmetric(self):
        mesh = box_hex(1, 1, 1)
        coords = mesh.nodes[mesh.blocks[0].connectivity[0]]
        mat = LinearElastic(E=1.0, nu=0.3)
        _, K, _ = solid_element(coords, np.zeros((8, 3)), mat, {}, 0.1, 0.0)
        assert np.allclose(K, K.T)

    def test_stiffness_is_force_jacobian(self):
        mesh = box_hex(1, 1, 1)
        coords = mesh.nodes[mesh.blocks[0].connectivity[0]]
        mat = NeoHookean(E=1.0, nu=0.3)
        rng = np.random.default_rng(0)
        u = rng.random((8, 3)) * 0.02
        f0, K, _ = solid_element(coords, u, mat, {}, 0.1, 0.0)
        h = 1e-7
        for dof in (0, 7, 13):
            du = np.zeros(24)
            du[dof] = h
            f1, _, _ = solid_element(
                coords, u + du.reshape(8, 3), mat, {}, 0.1, 0.0
            )
            assert np.allclose((f1 - f0) / h, K[:, dof], rtol=2e-4,
                               atol=1e-6)

    def test_pressure_face_load_total_force(self):
        face = np.array(
            [[0.0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]], dtype=float
        )
        forces = pressure_face_load(face, 2.0)
        # Unit face, outward normal +z: total force = -p * A * n.
        assert np.allclose(forces.sum(axis=0), [0.0, 0.0, -2.0])


class TestSolidSolves:
    def test_linear_one_iteration(self):
        model = cantilever()
        _, record = solve_model(model)
        assert record.converged
        assert record.total_newton_iterations == 1

    def test_tip_deflection_direction(self):
        model = cantilever()
        values, _ = solve_model(model)
        tip = model.mesh.nodes_on_plane(2, 1.0)
        assert values[tip, 2].mean() < 0

    def test_stiffer_material_deflects_less(self):
        soft, _ = solve_model(cantilever(E=1.0))
        stiff, _ = solve_model(cantilever(E=100.0))
        assert abs(stiff[:, 2]).max() < abs(soft[:, 2]).max()

    def test_neohookean_converges_quadratically_enough(self):
        model = cantilever(material=NeoHookean(E=10.0, nu=0.3, name="mat"),
                           load=-0.05)
        _, record = solve_model(model)
        assert record.converged
        assert record.total_newton_iterations <= 8

    def test_tet_mesh_solves(self):
        mesh = box_tet(2, 2, 2)
        model = FEModel(mesh)
        model.add_material(LinearElastic(E=5.0, nu=0.3, name="mat"))
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        model.add_nodal_load(mesh.nodes_on_plane(2, 1.0), "uz", -0.01)
        model.finalize()
        _, record = solve_model(model)
        assert record.converged

    def test_nonconvergence_raises(self):
        model = cantilever(material=NeoHookean(E=0.1, nu=0.3, name="mat"),
                           load=-50.0)
        model.step = StepSettings(n_steps=1, max_newton=3)
        with pytest.raises(NewtonError):
            solve_model(model)

    def test_record_summary_fields(self):
        _, record = solve_model(cantilever())
        s = record.summary()
        for key in ("neq", "nnz", "newton_iterations", "wall_time",
                    "solvers"):
            assert key in s


class TestMultiphysicsSolves:
    def test_biphasic_consolidation_pressure_decays(self):
        mesh = box_hex(2, 2, 3, physics="biphasic")
        mesh.blocks[0].physics = "biphasic"
        model = FEModel(mesh)
        model.add_material(BiphasicMaterial(
            LinearElastic(E=1.0, nu=0.2), permeability=1.0, name="mat"))
        lo, hi = mesh.bounding_box()
        model.fix(mesh.nodes_on_plane(2, lo[2]), ("ux", "uy", "uz"))
        top = mesh.nodes_on_plane(2, hi[2])
        model.fix(top, ("p",))
        model.prescribe(top, "uz", -0.05, ramp())
        model.step = StepSettings(duration=4.0, n_steps=4)
        model.finalize()
        values, record = solve_model(model)
        assert record.converged
        # Pore pressure should be non-negative under compression and zero
        # at the drained surface.
        assert values[top, 3].max() <= 1e-12

    def test_fluid_inlet_flow(self):
        mesh = box_hex(3, 2, 2, physics="fluid")
        mesh.blocks[0].physics = "fluid"
        model = FEModel(mesh)
        model.add_material(NewtonianFluid(viscosity=0.5, bulk_modulus=50.0,
                                          name="mat"))
        lo, hi = mesh.bounding_box()
        walls = mesh.nodes_where(
            lambda x, y, z: (abs(y - lo[1]) < 1e-9) | (abs(y - hi[1]) < 1e-9)
            | (abs(z - lo[2]) < 1e-9) | (abs(z - hi[2]) < 1e-9))
        model.fix(walls, ("vx", "vy", "vz"))
        inlet = [n for n in mesh.nodes_on_plane(0, lo[0])
                 if n not in set(walls.tolist())]
        model.prescribe(inlet, "vx", 0.1, ramp())
        model.step = StepSettings(duration=0.5, n_steps=2)
        model.finalize()
        values, record = solve_model(model)
        assert record.converged
        assert values[:, 5].max() > 0  # vx field developed

    def test_contact_limits_penetration(self):
        mesh = box_hex(2, 2, 2)
        model = FEModel(mesh)
        model.add_material(LinearElastic(E=5.0, nu=0.3, name="mat"))
        top = mesh.nodes_on_plane(2, 1.0)
        model.fix(top, ("ux", "uy"))
        model.prescribe(top, "uz", -0.3, ramp())
        model.add_contact(RigidPlaneContact(
            mesh.nodes_on_plane(2, 0.0), normal=(0, 0, 1), offset=-0.1,
            penalty=500.0))
        model.step = StepSettings(duration=1.0, n_steps=2, rtol=1e-5)
        model.finalize()
        values, record = solve_model(model)
        assert record.converged
        bottom = mesh.nodes_on_plane(2, 0.0)
        # Bottom nodes pushed below the plane only by the penalty scale.
        assert values[bottom, 2].min() > -0.12

    def test_rigid_body_prescribed_translation(self):
        mesh = box_hex(2, 2, 4, lz=2.0)
        conn = mesh.blocks[0].connectivity
        zc = mesh.nodes[conn].mean(axis=1)[:, 2]
        mesh.blocks = []
        mesh.add_block(ElementBlock("soft", "hex8", conn[zc < 1.0], "mat"))
        mesh.add_block(ElementBlock("hard", "hex8", conn[zc >= 1.0],
                                    "rigid"))
        model = FEModel(mesh)
        model.add_material(LinearElastic(E=5.0, nu=0.3, name="mat"))
        model.add_material(RigidMaterial(name="rigid"))
        body = model.add_rigid_body(RigidBody("hard", ["hard"]))
        body.prescribe("tz", -0.05, ramp())
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        model.finalize()
        values, record = solve_model(model)
        assert record.converged
        # Every rigid node moved down by exactly the prescribed amount.
        for node in body.nodes:
            assert np.isclose(values[node, 2], -0.05, atol=1e-9)

    def test_rigid_nodes_have_no_equations(self):
        mesh = box_hex(1, 1, 2, lz=2.0)
        conn = mesh.blocks[0].connectivity
        mesh.blocks = []
        mesh.add_block(ElementBlock("soft", "hex8", conn[:1], "mat"))
        mesh.add_block(ElementBlock("hard", "hex8", conn[1:], "rigid"))
        model = FEModel(mesh)
        model.add_material(LinearElastic(name="mat"))
        model.add_material(RigidMaterial(name="rigid"))
        body = model.add_rigid_body(RigidBody("hard", ["hard"]))
        model.fix(mesh.nodes_on_plane(2, 0.0), ("ux", "uy", "uz"))
        model.finalize()
        for node in body.nodes:
            assert model.dofs.eq(int(node), "ux") == -1
