"""Declarative studies: axes, plans, execution policies, golden parity.

The golden fixture ``tests/golden/study_parity.json`` was captured at
commit 6c4622c (PR 2 head), immediately *before* the Study refactor:
each sweep on (ar, co) at tiny/4000 through a cache-free Runner, fig7 /
fig4 / fig2 / fig3 at their small scales, and fig8-fig12 at the default
scale through the committed ``benchmarks/_results`` cache.  The tests
here assert the refactored call sites still produce byte-identical
output on the cycle tier.
"""

import json
import os

import pytest

from repro.core import figures, sweeps
from repro.core.characterize import characterize_vtune_suite
from repro.core.runner import Runner
from repro.engine import Progress
from repro.engine.study import (
    Axis,
    Study,
    axis,
    parse_axis,
    select_refinement,
)
from repro.engine.jobs import config_fingerprint
from repro.uarch.config import CacheConfig, gem5_baseline

FIXTURE = os.path.join(os.path.dirname(__file__), "golden",
                       "study_parity.json")

_FAST = dict(scale="tiny", budget=4000)


def _fixture():
    with open(FIXTURE) as fh:
        return json.load(fh)


def _no_cache_runner():
    return Runner(use_disk_cache=False)


# ----------------------------------------------------------------------
# Axes
# ----------------------------------------------------------------------
def test_named_axes_match_sweep_configs():
    """CLI axes build the exact configs the paper sweeps build."""
    ax = axis("l2_kb", (256, 2048))
    cfgs = [gem5_baseline(**ax.overrides_for(v)) for v in ax.values]
    expected = [gem5_baseline(l2=CacheConfig(kb, 16, 14))
                for kb in (256, 2048)]
    assert ([config_fingerprint(c) for c in cfgs]
            == [config_fingerprint(c) for c in expected])

    ax = axis("width", (2, 8))
    assert ax.overrides_for(2) == {"dispatch_width": 2, "issue_width": 2}

    ax = axis("lsq", ("72:56", (96, 72)))
    assert ax.label_for(ax.values[0]) == "72_56"
    assert ax.overrides_for(ax.values[1]) == {"lq_entries": 96,
                                              "sq_entries": 72}


def test_parse_axis_specs():
    ax = parse_axis("freq_ghz=1,2.5")
    assert ax.values == (1.0, 2.5)
    with pytest.raises(ValueError, match="unknown axis"):
        parse_axis("nope=1")
    with pytest.raises(ValueError, match="name=v1,v2"):
        parse_axis("freq_ghz")
    with pytest.raises(ValueError, match="at least one value"):
        Axis("freq_ghz", ())


def test_study_points_cross_product_and_labels():
    study = Study("s", axes=[axis("l2_kb", (256, 512)),
                             axis("freq_ghz", (2, 3))],
                  workloads=("ar",), **_FAST)
    labels = [label for label, _ in study.points()]
    assert labels == [(256, 2.0), (256, 3.0), (512, 2.0), (512, 3.0)]
    jobs = study.jobs(model="interval")
    assert len(jobs) == 4 and all(j.model == "interval" for j in jobs)

    single = Study("one", workloads=("ar",), base=gem5_baseline(), **_FAST)
    assert [label for label, _ in single.points()] == ["gem5-baseline"]


def test_study_from_jobs_roundtrip():
    study = sweeps.study_for("l2", workloads=("ar", "co"), **_FAST)
    jobs = study.jobs()
    rebuilt = Study.from_jobs("l2", jobs)
    assert [j.key() for j in rebuilt.jobs()] == [j.key() for j in jobs]
    with pytest.raises(ValueError, match="rectangular"):
        Study.from_jobs("bad", jobs[:-1])  # co misses the 2048 point


# ----------------------------------------------------------------------
# Refinement selection
# ----------------------------------------------------------------------
def test_select_refinement_plateau_curve():
    # Capacity curve: improves, then flat.  Window = knee +- 1; the far
    # plateau is trusted to the scan tier.
    assert select_refinement([12.2, 11.4, 11.4, 11.4]) == [0, 1, 2]
    # Flat from the start: knee at 0.
    assert select_refinement([5.0, 5.0, 5.0, 5.0]) == [0, 1]
    # Still improving at the end.
    assert select_refinement([30.0, 16.0, 11.0, 9.0]) == [2, 3]


def test_select_refinement_non_monotone_includes_best():
    # Categorical curve: near-best at index 0, true best at index 3 —
    # both neighborhoods are selected.
    vals = [10.0, 14.0, 15.0, 9.9]
    assert select_refinement(vals, margin=0.02) == [0, 1, 2, 3]
    assert select_refinement([10.0, 20.0, 30.0, 9.9, 25.0],
                             margin=0.02) == [0, 1, 2, 3, 4]


def test_select_refinement_higher_better():
    assert select_refinement([1.0, 1.9, 1.9, 1.9],
                             higher_better=True) == [0, 1, 2]


# ----------------------------------------------------------------------
# Execution policies
# ----------------------------------------------------------------------
def test_interval_policy_equals_interval_model():
    r = _no_cache_runner()
    via_policy = sweeps.l2_sweep(workloads=("ar",), runner=r,
                                 policy="interval", **_FAST)
    via_model = sweeps.l2_sweep(workloads=("ar",), runner=r,
                                model="interval", **_FAST)
    assert {k: m.as_dict() for k, m in via_policy["ar"].items()} == \
        {k: m.as_dict() for k, m in via_model["ar"].items()}


def test_unknown_policy_rejected():
    study = sweeps.study_for("l2", workloads=("ar",), **_FAST)
    with pytest.raises(ValueError, match="unknown policy"):
        study.run(policy="psychic")


def test_adaptive_merges_tiers_and_refines_fewer_cells(tmp_path):
    runner = Runner(cache_dir=str(tmp_path))
    result = sweeps.l2_sweep(workloads=("ar", "co"), runner=runner,
                             policy="adaptive", full_result=True, **_FAST)
    grid = len(result.cells)
    assert grid == 8
    counts = result.tier_counts()
    # Strictly fewer cycle jobs than the full grid, and the scan
    # covered everything.
    assert 0 < counts["cycle"] < grid
    assert counts["cycle"] + counts.get("interval", 0) == grid
    assert result.jobs_run["interval"] == grid
    assert result.jobs_run["cycle"] == counts["cycle"]

    # Every cycle-refined cell matches the all-cycle sweep exactly.
    full = sweeps.l2_sweep(workloads=("ar", "co"), runner=runner,
                           full_result=True, **_FAST)
    full_table = full.table()
    tiers = result.tiers()
    for cell in result.cells:
        if cell.tier == "cycle":
            assert cell.metrics.as_dict() == \
                full_table[cell.workload][cell.label].as_dict()
    # The merged table records a tier for every cell.
    assert set(tiers.values()) <= {"cycle", "interval"}

    # Tier-aware store keys: interval entries carry the tier suffix.
    keys = runner.store.keys()
    assert any("_interval-v" in k for k in keys)
    assert any("_interval-v" not in k for k in keys)


def test_adaptive_progress_totals_extend(tmp_path):
    class Quiet(Progress):
        def __init__(self):
            super().__init__(0, enabled=False)

    progress = Quiet()
    result = sweeps.l2_sweep(workloads=("ar",), policy="adaptive",
                             runner=Runner(cache_dir=str(tmp_path)),
                             progress=progress, full_result=True, **_FAST)
    expected = len(result.cells) + result.jobs_run["cycle"]
    assert progress.total == expected
    assert progress.done == expected


def test_adaptive_matches_all_cycle_conclusions_on_gem5_l2():
    """Acceptance: ``l2 --policy adaptive`` lands on the same
    argmin/knee per workload as the all-cycle sweep while running
    strictly fewer cycle-tier jobs than the 24-point grid.

    Runs at the default scale through the committed
    ``benchmarks/_results`` cache (both tiers of the full l2 grid are
    committed warm, so this is a lookup, not a simulation, in CI).
    """
    runner = Runner()  # repo cache
    adaptive = sweeps.l2_sweep(policy="adaptive", runner=runner,
                               full_result=True)
    full = sweeps.l2_sweep(runner=runner, full_result=True)
    grid = len(full.cells)
    assert adaptive.jobs_run["cycle"] < grid
    assert adaptive.best() == full.best()
    assert adaptive.knee() == full.knee()


# ----------------------------------------------------------------------
# Golden parity with the pre-refactor call sites (cycle tier)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,fn", [
    ("frequency", sweeps.frequency_sweep),
    ("l1i", sweeps.l1i_sweep),
    ("l1d", sweeps.l1d_sweep),
    ("l2", sweeps.l2_sweep),
    ("width", sweeps.width_sweep),
    ("lsq", sweeps.lsq_sweep),
    ("branch", sweeps.branch_predictor_sweep),
    ("rob_iq", sweeps.rob_iq_sweep),
])
def test_sweep_golden_parity_cycle_tier(name, fn):
    data = fn(workloads=("ar", "co"), runner=_no_cache_runner(), **_FAST)
    got = {w: {str(k): m.as_dict() for k, m in d.items()}
           for w, d in data.items()}
    assert got == _fixture()["sweeps_tiny"][name]


def test_fig7_golden_parity_cycle_tier():
    got = figures.fig7_pipeline_stages(scale="tiny",
                                       runner=_no_cache_runner())
    assert got == _fixture()["fig7_tiny"]


def test_fig4_and_vtune_suite_golden_parity():
    fx = _fixture()
    runner = _no_cache_runner()
    assert figures.fig4_hotspots(scale="tiny", runner=runner) \
        == fx["fig4_tiny"]
    chars = characterize_vtune_suite(scale="tiny", budget=2000,
                                     runner=runner)
    assert [c.topdown.row() for c in chars] == fx["fig2_tiny"]
    assert [c.topdown.stall_row() for c in chars] == fx["fig3_tiny"]


@pytest.mark.parametrize("name,fn", [
    ("fig8", figures.fig8_frequency),
    ("fig9", figures.fig9_cache),
    ("fig10", figures.fig10_width),
    ("fig11", figures.fig11_lsq),
    ("fig12", figures.fig12_branch_predictor),
])
def test_figure_golden_parity_default_scale(name, fn):
    # Through the committed cache, like the fixture capture: a parity
    # check on the full default-scale grids at lookup cost.
    got = json.loads(json.dumps(fn(runner=Runner()), default=str))
    assert got == _fixture()[name + "_default"]


def test_adaptive_single_point_study_skips_scan(tmp_path):
    # One grid point per workload: nothing to select, so adaptive must
    # not pay for an interval scan whose results it would discard.
    study = Study("one", workloads=("ar", "co"), base=gem5_baseline(),
                  **_FAST)
    result = study.run(policy="adaptive",
                       runner=Runner(cache_dir=str(tmp_path)))
    assert result.policy == "adaptive"
    assert result.jobs_run == {"cycle": 2}
    assert result.tier_counts() == {"cycle": 2}


def test_sweep_metric_threads_into_adaptive_selection(tmp_path):
    study = sweeps.study_for("l2", metric="ipc")
    assert study.metric == "ipc"
    result = sweeps.l2_sweep(workloads=("ar",), metric="ipc",
                             policy="adaptive", full_result=True,
                             runner=Runner(cache_dir=str(tmp_path)),
                             **_FAST)
    # best() defaults to the study's metric: the ipc-best cell must be
    # a cycle-refined one.
    best = result.best()["ar"]
    assert result.tiers()[("ar", best)] == "cycle"


def test_tier_ladder_hooks_are_symmetric():
    from repro.uarch.core import TIER_LADDER, refine_tier, scan_tier

    assert TIER_LADDER == ("interval", "cycle")
    assert scan_tier("cycle") == "interval"
    assert refine_tier("interval") == "cycle"
    assert scan_tier("interval") is None      # nothing coarser
    assert refine_tier("cycle") is None       # nothing more accurate
    assert refine_tier(scan_tier("cycle")) == "cycle"


def test_empty_sweep_grid_is_an_error_not_the_default_grid():
    # Regression guard for `values or default`: an explicitly empty
    # grid must fail loudly, never silently run the full default sweep.
    with pytest.raises(ValueError, match="at least one value"):
        sweeps.l2_sweep(workloads=("ar",), sizes_kb=(), **_FAST)


def test_result_refined_lists_cycle_cells(tmp_path):
    result = sweeps.l2_sweep(workloads=("ar",), policy="adaptive",
                             runner=Runner(cache_dir=str(tmp_path)),
                             full_result=True, **_FAST)
    refined = result.refined()["ar"]
    tiers = result.tiers()
    assert refined == [c.label for c in result.cells
                       if tiers[("ar", c.label)] == "cycle"]
    assert 0 < len(refined) < len(result.cells)


def test_run_characterizations_policy_tolerates_repeated_workloads(tmp_path):
    from repro.core.characterize import (characterize_jobs,
                                         run_characterizations)

    jobs = characterize_jobs(["ar", "co", "ar"], **_FAST)
    runner = Runner(cache_dir=str(tmp_path))
    with_policy = run_characterizations(jobs, runner=runner,
                                        policy="cycle")
    plain = run_characterizations(jobs, runner=runner)
    assert [c.workload for c in with_policy] == ["ar", "co", "ar"]
    assert [c.metrics.as_dict() for c in with_policy] == \
        [c.metrics.as_dict() for c in plain]


def test_sweep_function_grids_come_from_sweep_axes():
    # Single source of truth: the functions' None defaults resolve to
    # the SWEEP_AXES grid, so editing one place changes both paths.
    for name in sweeps.SWEEP_AXES:
        study = sweeps.study_for(name, workloads=("ar",))
        assert len(study.points()) == len(sweeps.SWEEP_AXES[name][1])


def test_adaptive_figures_tag_mixed_tier_rows(tmp_path):
    runner = Runner(cache_dir=str(tmp_path))
    rows = figures.fig8_frequency(runner=runner, policy="adaptive")
    # At the default scale the frequency curve has a real region to
    # refine, so the table mixes tiers and every row must say which.
    assert all("tier" in r for r in rows)
    tags = {r["tier"] for r in rows}
    assert len(tags) > 1 and tags <= {"cycle", "interval", "mixed"}
    # speedup_vs_1ghz rows whose cell tier differs from the 1 GHz
    # baseline cell's tier must be called out as mixed, not cycle.
    for r in rows:
        if r["tier"] == "cycle":
            base = next(b for b in rows if b["workload"] == r["workload"]
                        and b["freq_ghz"] == 1.0)
            assert base["tier"] in ("cycle", "mixed")
    # Cycle-policy rows keep the pre-study schema (no tier key).
    plain = figures.fig8_frequency(runner=Runner())
    assert all("tier" not in r for r in plain)


def test_select_refinement_near_mode():
    # Flattened multi-axis grids: no windows, just every near-best
    # point (indices are not neighbors there).
    assert select_refinement([12.2, 11.4, 11.4, 11.4],
                             mode="near") == [1, 2, 3]
    assert select_refinement([30.0, 16.0, 11.0, 9.0], mode="near") == [3]


def test_multi_axis_adaptive_uses_near_selection(tmp_path):
    study = Study("s", axes=[axis("l2_kb", (256, 512)),
                             axis("freq_ghz", (2, 3))],
                  workloads=("ar",), **_FAST)
    result = study.run(policy="adaptive",
                       runner=Runner(cache_dir=str(tmp_path)))
    # Every refined cell must itself be near-best on the scan curve —
    # no knee-window spillover across axis-row boundaries.
    assert 0 < result.jobs_run["cycle"] <= len(result.cells)
    best = result.best()["ar"]
    assert result.tiers()[("ar", best)] == "cycle"
