"""Tests for the constitutive model library."""

import numpy as np
import pytest

from repro.fem import (
    BiphasicMaterial,
    ElasticDamage,
    LinearElastic,
    MooneyRivlin,
    MultigenerationGrowth,
    MultiphasicMaterial,
    NeoHookean,
    NewtonianFluid,
    OrthotropicElastic,
    PlastiDamage,
    PrestrainElastic,
    PronyViscoelastic,
    ReactiveViscoelastic,
    RigidMaterial,
    TransIsoActive,
    VolumetricGrowth,
)
from repro.fem.loadcurve import constant
from repro.fem.materials.base import isotropic_tangent

_VOIGT_PAIRS = ((0, 0), (1, 1), (2, 2), (0, 1), (1, 2), (2, 0))


def numeric_pk2_tangent(material, C, h=1e-6):
    """Central-difference material tangent DD[I,J] = 2 dS_I/dC_J."""
    DD = np.empty((6, 6))
    for J, (k, l) in enumerate(_VOIGT_PAIRS):
        dC = np.zeros((3, 3))
        dC[k, l] += 0.5 * h
        dC[l, k] += 0.5 * h
        Sp, _, _ = material.pk2_response(C + dC, {}, 0.1, 0.0)
        Sm, _, _ = material.pk2_response(C - dC, {}, 0.1, 0.0)
        dS = (Sp - Sm) / h
        # Engineering-shear Voigt convention: DD[:, J] = dS_I / dE_J.
        DD[:, J] = np.array([dS[i, j] for (i, j) in _VOIGT_PAIRS])
    return DD


class TestLinearElastic:
    def test_uniaxial_stress(self):
        mat = LinearElastic(E=2.0, nu=0.0)
        eps = np.array([0.01, 0, 0, 0, 0, 0.0])
        sig, D, _ = mat.small_strain_response(eps, {}, 0.1, 0.0)
        assert np.isclose(sig[0], 0.02)
        assert np.isclose(sig[1], 0.0)

    def test_tangent_is_spd(self):
        D = isotropic_tangent(1.0, 0.3)
        assert np.all(np.linalg.eigvalsh(D) > 0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LinearElastic(E=-1.0)
        with pytest.raises(ValueError):
            LinearElastic(nu=0.6)

    def test_moduli(self):
        mat = LinearElastic(E=1.0, nu=0.25)
        assert np.isclose(mat.shear_modulus, 0.4)
        assert np.isclose(mat.bulk_modulus, 1.0 / 1.5)


class TestOrthotropic:
    def test_reduces_to_isotropic(self):
        E, nu = 1.0, 0.3
        G = E / (2 * (1 + nu))
        mat = OrthotropicElastic(E=(E, E, E), nu=(nu, nu, nu), G=(G, G, G))
        assert np.allclose(mat._D, isotropic_tangent(E, nu), atol=1e-10)

    def test_direction_dependence(self):
        mat = OrthotropicElastic(E=(2.0, 1.0, 0.5), nu=(0.2, 0.2, 0.1),
                                 G=(0.5, 0.4, 0.3))
        e1 = np.array([0.01, 0, 0, 0, 0, 0.0])
        e3 = np.array([0, 0, 0.01, 0, 0, 0.0])
        s1, _, _ = mat.small_strain_response(e1, {}, 0.1, 0.0)
        s3, _, _ = mat.small_strain_response(e3, {}, 0.1, 0.0)
        assert s1[0] > s3[2]


class TestNeoHookean:
    def test_stress_free_at_identity(self):
        mat = NeoHookean(E=1.0, nu=0.3)
        S, DD, _ = mat.pk2_response(np.eye(3), {}, 0.1, 0.0)
        assert np.allclose(S, 0.0, atol=1e-12)

    def test_tangent_matches_numeric(self):
        mat = NeoHookean(E=1.0, nu=0.3)
        F = np.eye(3) + np.array(
            [[0.05, 0.02, 0.0], [0.0, -0.03, 0.01], [0.0, 0.0, 0.04]]
        )
        C = F.T @ F
        _, DD, _ = mat.pk2_response(C, {}, 0.1, 0.0)
        assert np.allclose(DD, numeric_pk2_tangent(mat, C), rtol=2e-4,
                           atol=1e-6)

    def test_small_strain_consistency_with_linear(self):
        mat = NeoHookean(E=1.0, nu=0.3)
        lin = LinearElastic(E=1.0, nu=0.3)
        eps = 1e-6
        F = np.eye(3)
        F[0, 0] += eps
        S, _, _ = mat.pk2_response(F.T @ F, {}, 0.1, 0.0)
        sig, _, _ = lin.small_strain_response(
            np.array([eps, 0, 0, 0, 0, 0.0]), {}, 0.1, 0.0
        )
        assert np.isclose(S[0, 0], sig[0], rtol=1e-3)

    def test_det_negative_raises(self):
        mat = NeoHookean()
        with pytest.raises(ValueError):
            mat.pk2_response(-np.eye(3), {}, 0.1, 0.0)


class TestMooneyRivlin:
    def test_stress_free_at_identity(self):
        mat = MooneyRivlin(c1=0.3, c2=0.1, k=10.0)
        S, _, _ = mat.pk2_response(np.eye(3), {}, 0.1, 0.0)
        assert np.allclose(S, 0.0, atol=1e-10)

    def test_tangent_symmetric(self):
        mat = MooneyRivlin(c1=0.3, c2=0.1, k=10.0)
        F = np.eye(3) * 1.02
        _, DD, _ = mat.pk2_response(F.T @ F, {}, 0.1, 0.0)
        assert np.allclose(DD, DD.T)

    def test_volumetric_penalty_resists_compression(self):
        mat = MooneyRivlin(c1=0.3, c2=0.0, k=50.0)
        C = np.eye(3) * 0.9 ** 2
        S, _, _ = mat.pk2_response(C, {}, 0.1, 0.0)
        assert S[0, 0] < 0  # compressive stress resisting volume loss


class TestMuscle:
    def test_active_stress_follows_activation(self):
        lc = constant(0.5)
        mat = TransIsoActive(E=1.0, nu=0.3, sigma_active=0.2, activation=lc)
        S, _, _ = mat.pk2_response(np.eye(3), {}, 0.1, 1.0)
        assert np.isclose(S[2, 2], 0.1)  # 0.2 * 0.5 along default fiber z

    def test_passive_fiber_only_in_tension(self):
        mat = TransIsoActive(E=1.0, nu=0.3, c_fiber=1.0, sigma_active=0.0)
        C_comp = np.diag([1.0, 1.0, 0.95])
        S_comp, _, _ = mat.pk2_response(C_comp, {}, 0.1, 0.0)
        nh = NeoHookean(E=1.0, nu=0.3)
        S_nh, _, _ = nh.pk2_response(C_comp, {}, 0.1, 0.0)
        assert np.allclose(S_comp, S_nh)  # fibers slack in compression


class TestViscoelastic:
    def test_instantaneous_then_relaxing(self):
        mat = PronyViscoelastic(LinearElastic(E=1.0, nu=0.3),
                                g=(0.5,), tau=(1.0,))
        eps = np.array([0.01, 0, 0, 0, 0, 0.0])
        state = {k: np.zeros(s) for k, s in mat.state_layout().items()}
        sig1, _, state = mat.small_strain_response(eps, state, 0.01, 0.01)
        # Hold the strain: stress must decay toward the long-term value.
        sig = sig1
        for i in range(200):
            sig, _, state = mat.small_strain_response(eps, state, 0.05, i * 0.05)
        dev1 = sig1[0] - sig1[:3].mean()
        dev_end = sig[0] - sig[:3].mean()
        assert dev_end < dev1
        assert dev_end > 0.4 * dev1  # g_inf = 0.5 floor

    def test_g_sum_validation(self):
        with pytest.raises(ValueError):
            PronyViscoelastic(LinearElastic(), g=(0.7, 0.4), tau=(1.0, 2.0))

    def test_reactive_state_layout(self):
        mat = ReactiveViscoelastic(LinearElastic(), n_bonds=3)
        layout = mat.state_layout()
        assert layout["bond_strain"] == (3, 6)
        assert layout["bond_frac"] == (3,)

    def test_reactive_stress_bounded_by_elastic(self):
        base = LinearElastic(E=1.0, nu=0.3)
        mat = ReactiveViscoelastic(base, n_bonds=2, k0=1.0, beta=0.5)
        eps = np.array([0.02, 0, 0, 0, 0, 0.0])
        state = {k: np.zeros(s) for k, s in mat.state_layout().items()}
        sig, _, state = mat.small_strain_response(eps, state, 0.1, 0.1)
        sig_e, _, _ = base.small_strain_response(eps, {}, 0.1, 0.1)
        assert abs(sig[0]) <= abs(sig_e[0]) * 1.5


class TestDamage:
    def test_no_damage_below_threshold(self):
        mat = ElasticDamage(LinearElastic(E=1.0, nu=0.3), kappa0=0.05)
        eps = np.array([0.01, 0, 0, 0, 0, 0.0])
        sig, _, state = mat.small_strain_response(
            eps, {"kappa": np.zeros(1)}, 0.1, 0.0)
        base, _, _ = LinearElastic(E=1.0, nu=0.3).small_strain_response(
            eps, {}, 0.1, 0.0)
        assert np.allclose(sig, base)

    def test_damage_softens_and_is_irreversible(self):
        mat = ElasticDamage(LinearElastic(E=1.0, nu=0.3), kappa0=0.01,
                            kappa_c=0.05, d_max=0.8)
        big = np.array([0.1, 0, 0, 0, 0, 0.0])
        small = np.array([0.01, 0, 0, 0, 0, 0.0])
        _, _, state = mat.small_strain_response(
            big, {"kappa": np.zeros(1)}, 0.1, 0.0)
        sig_after, _, _ = mat.small_strain_response(small, state, 0.1, 0.0)
        sig_virgin, _, _ = mat.small_strain_response(
            small, {"kappa": np.zeros(1)}, 0.1, 0.0)
        assert abs(sig_after[0]) < abs(sig_virgin[0])  # damage persists

    def test_dmax_validation(self):
        with pytest.raises(ValueError):
            ElasticDamage(LinearElastic(), d_max=1.0)


class TestPlastiDamage:
    def test_elastic_below_yield(self):
        mat = PlastiDamage(LinearElastic(E=1.0, nu=0.3), yield_stress=1.0)
        eps = np.array([0.001, 0, 0, 0, 0, 0.0])
        state = {k: np.zeros(s) for k, s in mat.state_layout().items()}
        _, _, new_state = mat.small_strain_response(eps, state, 0.1, 0.0)
        assert np.allclose(new_state["eps_p"], 0.0)

    def test_plastic_flow_above_yield(self):
        mat = PlastiDamage(LinearElastic(E=1.0, nu=0.3),
                           yield_stress=0.001, hardening=0.1)
        eps = np.array([0.0, 0, 0, 0.05, 0, 0.0])  # shear
        state = {k: np.zeros(s) for k, s in mat.state_layout().items()}
        _, _, new_state = mat.small_strain_response(eps, state, 0.1, 0.0)
        assert new_state["alpha"][0] > 0
        assert np.linalg.norm(new_state["eps_p"]) > 0

    def test_stress_on_yield_surface_after_return(self):
        ys = 0.01
        mat = PlastiDamage(LinearElastic(E=1.0, nu=0.3), yield_stress=ys,
                           hardening=0.0, d_max=0.0)
        eps = np.array([0.0, 0, 0, 0.05, 0, 0.0])
        state = {k: np.zeros(s) for k, s in mat.state_layout().items()}
        sig, _, _ = mat.small_strain_response(eps, state, 0.1, 0.0)
        dev = sig.copy()
        dev[:3] -= sig[:3].mean()
        s_norm = np.sqrt(dev[:3] @ dev[:3] + 2 * (dev[3:] @ dev[3:]))
        assert np.isclose(s_norm, np.sqrt(2.0 / 3.0) * ys, rtol=1e-6)


class TestGrowthFamily:
    def test_prestrain_shifts_equilibrium(self):
        eig = np.array([0.01, 0, 0, 0, 0, 0.0])
        mat = PrestrainElastic(LinearElastic(E=1.0, nu=0.0), eig)
        sig, _, _ = mat.small_strain_response(eig, {}, 0.1, 0.0)
        assert np.allclose(sig, 0.0, atol=1e-14)

    def test_multigeneration_activation(self):
        gens = [(0.5, np.array([0.01, 0, 0, 0, 0, 0.0]))]
        mat = MultigenerationGrowth(LinearElastic(E=1.0, nu=0.0), gens)
        assert np.allclose(mat.eigenstrain_at(0.4), 0.0)
        assert np.isclose(mat.eigenstrain_at(0.6)[0], 0.01)

    def test_volumetric_growth_rate(self):
        mat = VolumetricGrowth(LinearElastic(E=1.0, nu=0.0), rate=0.3)
        zero = np.zeros(6)
        sig_early, _, _ = mat.small_strain_response(zero, {}, 0.1, 0.1)
        sig_late, _, _ = mat.small_strain_response(zero, {}, 0.1, 1.0)
        assert sig_late[0] < sig_early[0] < 0  # growing compression


class TestOtherMaterials:
    def test_biphasic_permeability_forms(self):
        solid = LinearElastic(E=1.0, nu=0.3)
        assert BiphasicMaterial(solid, 2.0).anisotropy_ratio == 1.0
        aniso = BiphasicMaterial(solid, (1.0, 1.0, 10.0))
        assert np.isclose(aniso.anisotropy_ratio, 10.0)
        with pytest.raises(ValueError):
            BiphasicMaterial(solid, (-1.0, 1.0, 1.0))

    def test_multiphasic_describe(self):
        mat = MultiphasicMaterial(LinearElastic(), diffusivity=0.5,
                                  osmotic_coeff=0.1)
        d = mat.describe()
        assert d["type"] == "MultiphasicMaterial"
        assert d["osmotic_coeff"] == 0.1

    def test_fluid_validation(self):
        with pytest.raises(ValueError):
            NewtonianFluid(viscosity=0.0)
        with pytest.raises(ValueError):
            NewtonianFluid(bulk_modulus=-1.0)

    def test_rigid_marker(self):
        mat = RigidMaterial(density=2.0)
        assert mat.describe()["density"] == 2.0
