"""Precomputed front-end streams: bit-parity with the per-op path."""

import pytest

from gem5_golden import gem5_traces
from repro.uarch import CycleCore, gem5_baseline, host_i9
from repro.uarch.core.frontend import FrontEnd, StreamFrontEnd
from repro.uarch.core.streams import get_streams, streams_enabled

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _stats_pair(trace, config, warm):
    with_streams = CycleCore(trace, config, warm=warm).run().as_dict()
    without = CycleCore(trace, config, warm=warm,
                        streams=False).run().as_dict()
    return with_streams, without


class TestStreamParity:
    @pytest.mark.parametrize("workload", ("ar", "ma"))
    @pytest.mark.parametrize("warm", (True, False))
    def test_gem5_baseline_bit_parity(self, workload, warm):
        trace = gem5_traces()[workload]
        a, b = _stats_pair(trace, gem5_baseline(), warm)
        diffs = [k for k in b if a[k] != b[k]]
        assert a == b, f"stream path diverges in {diffs}"

    def test_three_level_hierarchy_bit_parity(self):
        # host-i9: L3 present, LTAGE predictor — the deepest I-side
        # machinery the stream precompute must mirror.
        trace = gem5_traces()["ar"]
        a, b = _stats_pair(trace, host_i9(), True)
        assert a == b

    def test_l2_interference_bit_parity(self):
        # The shared-L2 interference clock advances per access; any
        # drift in I-side L2 access placement would desync it.
        trace = gem5_traces()["tu"]
        cfg = gem5_baseline(l2_interference_period=7)
        a, b = _stats_pair(trace, cfg, True)
        assert a == b

    def test_frequency_change_reuses_one_stream(self):
        # The ITLB penalty scales with frequency but the stream stores
        # hit/miss outcomes, so one stream serves the frequency sweep.
        trace = gem5_traces()["ar"]
        st2 = get_streams(trace, gem5_baseline(freq_ghz=2.0))
        st4 = get_streams(trace, gem5_baseline(freq_ghz=4.0))
        assert st2.itlb_miss is st4.itlb_miss
        for f in (2.0, 4.0):
            a, b = _stats_pair(trace, gem5_baseline(freq_ghz=f), True)
            assert a == b


class TestStreamMachinery:
    def test_frontend_selection(self):
        trace = gem5_traces()["ar"]
        assert isinstance(CycleCore(trace, gem5_baseline()).frontend,
                          StreamFrontEnd)
        assert isinstance(
            CycleCore(trace, gem5_baseline(), streams=False).frontend,
            FrontEnd)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "0")
        assert not streams_enabled()
        trace = gem5_traces()["ar"]
        core = CycleCore(trace, gem5_baseline())
        assert isinstance(core.frontend, FrontEnd)

    def test_streams_cached_on_trace_across_configs(self):
        from repro.uarch.config import CacheConfig

        trace = gem5_traces()["ar"]
        a = get_streams(trace, gem5_baseline())
        # Different L2 size: same I-side fingerprint, same stream data.
        b = get_streams(trace, gem5_baseline(
            l2=CacheConfig(512, 16, 2, uncore_ns=4.0)))
        assert a.l1i_hit is b.l1i_hit
        assert a.bp_wrong is b.bp_wrong

    def test_machinery_totals_match_live_objects(self):
        trace = gem5_traces()["ma"]
        cfg = gem5_baseline()
        live = CycleCore(trace, cfg, streams=False).run()
        streamed = CycleCore(trace, cfg).run()
        assert streamed.branches == live.branches
        assert streamed.branch_mispredicts == live.branch_mispredicts
        assert streamed.cache["l1i"] == live.cache["l1i"]
