"""Precomputed front-end streams: bit-parity with the per-op path."""

import pytest

from gem5_golden import gem5_traces
from repro.uarch import CycleCore, gem5_baseline, host_i9
from repro.uarch.core.frontend import FrontEnd, StreamFrontEnd
from repro.uarch.core.streams import get_streams, streams_enabled

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def _stats_pair(trace, config, warm):
    with_streams = CycleCore(trace, config, warm=warm).run().as_dict()
    without = CycleCore(trace, config, warm=warm,
                        streams=False).run().as_dict()
    return with_streams, without


class TestStreamParity:
    @pytest.mark.parametrize("workload", ("ar", "ma"))
    @pytest.mark.parametrize("warm", (True, False))
    def test_gem5_baseline_bit_parity(self, workload, warm):
        trace = gem5_traces()[workload]
        a, b = _stats_pair(trace, gem5_baseline(), warm)
        diffs = [k for k in b if a[k] != b[k]]
        assert a == b, f"stream path diverges in {diffs}"

    def test_three_level_hierarchy_bit_parity(self):
        # host-i9: L3 present, LTAGE predictor — the deepest I-side
        # machinery the stream precompute must mirror.
        trace = gem5_traces()["ar"]
        a, b = _stats_pair(trace, host_i9(), True)
        assert a == b

    def test_l2_interference_bit_parity(self):
        # The shared-L2 interference clock advances per access; any
        # drift in I-side L2 access placement would desync it.
        trace = gem5_traces()["tu"]
        cfg = gem5_baseline(l2_interference_period=7)
        a, b = _stats_pair(trace, cfg, True)
        assert a == b

    def test_frequency_change_reuses_one_stream(self):
        # The ITLB penalty scales with frequency but the stream stores
        # hit/miss outcomes, so one stream serves the frequency sweep.
        trace = gem5_traces()["ar"]
        st2 = get_streams(trace, gem5_baseline(freq_ghz=2.0))
        st4 = get_streams(trace, gem5_baseline(freq_ghz=4.0))
        assert st2.itlb_miss is st4.itlb_miss
        for f in (2.0, 4.0):
            a, b = _stats_pair(trace, gem5_baseline(freq_ghz=f), True)
            assert a == b


class TestStreamMachinery:
    def test_frontend_selection(self):
        trace = gem5_traces()["ar"]
        assert isinstance(CycleCore(trace, gem5_baseline()).frontend,
                          StreamFrontEnd)
        assert isinstance(
            CycleCore(trace, gem5_baseline(), streams=False).frontend,
            FrontEnd)

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMS", "0")
        assert not streams_enabled()
        trace = gem5_traces()["ar"]
        core = CycleCore(trace, gem5_baseline())
        assert isinstance(core.frontend, FrontEnd)

    def test_streams_cached_on_trace_across_configs(self):
        from repro.uarch.config import CacheConfig

        trace = gem5_traces()["ar"]
        a = get_streams(trace, gem5_baseline())
        # Different L2 size: same I-side fingerprint, same stream data.
        b = get_streams(trace, gem5_baseline(
            l2=CacheConfig(512, 16, 2, uncore_ns=4.0)))
        assert a.l1i_hit is b.l1i_hit
        assert a.bp_wrong is b.bp_wrong

    def test_machinery_totals_match_live_objects(self):
        trace = gem5_traces()["ma"]
        cfg = gem5_baseline()
        live = CycleCore(trace, cfg, streams=False).run()
        streamed = CycleCore(trace, cfg).run()
        assert streamed.branches == live.branches
        assert streamed.branch_mispredicts == live.branch_mispredicts
        assert streamed.cache["l1i"] == live.cache["l1i"]


class TestStreamPersistence:
    """Stream sidecars next to the trace archive in the trace store."""

    @staticmethod
    def _fresh_trace(tmp_path, monkeypatch):
        from repro.core.runner import Runner

        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
        trace, _ = Runner().trace_for("ar", "tiny", 4000)
        return trace

    def test_sidecar_roundtrip_bit_exact(self, tmp_path, monkeypatch):
        trace = self._fresh_trace(tmp_path, monkeypatch)
        cfg = gem5_baseline()
        want = CycleCore(trace, cfg).run().as_dict()
        assert list(tmp_path.glob("*.streams.npz")), "sidecar not saved"
        # A "new process": trace reloaded from the store, stream memos
        # gone — the sidecar alone must reproduce identical bits.
        trace2 = self._fresh_trace(tmp_path, monkeypatch)
        assert not hasattr(trace2, "_fe_final")
        got = CycleCore(trace2, cfg).run().as_dict()
        assert got == want

    def test_warm_process_skips_precompute(self, tmp_path, monkeypatch):
        from repro import telemetry

        trace = self._fresh_trace(tmp_path, monkeypatch)
        cfg = gem5_baseline()
        get_streams(trace, cfg)  # populates the sidecar
        trace2 = self._fresh_trace(tmp_path, monkeypatch)
        with telemetry.span("test-root") as root:
            st = get_streams(trace2, cfg)
        names = [s.name for s in root.children]
        assert st is not None
        assert "stream_precompute" not in names
        # ... and it really is the persisted object, memoized for the
        # rest of the process.
        assert get_streams(trace2, cfg) is st

    def test_sidecar_counted_in_store_stats(self, tmp_path, monkeypatch):
        from repro.trace.store import TraceStore

        trace = self._fresh_trace(tmp_path, monkeypatch)
        get_streams(trace, gem5_baseline())
        stats = TraceStore(root=str(tmp_path)).stats()
        assert stats["entries"] == 1
        assert stats["stream_entries"] >= 1
        assert stats["stream_bytes"] > 0

    def test_unstored_trace_never_persists(self, tmp_path):
        trace = gem5_traces()["ar"]  # built with use_disk_cache=False
        assert get_streams(trace, gem5_baseline()) is not None
        assert not list(tmp_path.glob("*.streams.npz"))

    def test_prebuilt_trace_gets_persist_stamp(self, tmp_path, monkeypatch):
        # Pool-synthesized traces reach workers via PREBUILT_TRACES,
        # reconstructed from shipped columns with no store provenance;
        # trace_for must stamp them so workers persist sidecars too.
        from repro.core.runner import PREBUILT_TRACES, Runner

        trace = self._fresh_trace(tmp_path, monkeypatch)
        if hasattr(trace, "_stream_persist"):
            del trace._stream_persist
        key = ("ar", "tiny", 4000)
        monkeypatch.setitem(PREBUILT_TRACES, key, (trace, None))
        got, _ = Runner().trace_for(*key)
        assert got is trace
        store, trace_key = got._stream_persist
        assert trace_key == store.key(*key)
        get_streams(got, gem5_baseline())
        assert list(tmp_path.glob("*.streams.npz"))

    def test_corrupt_sidecar_recomputes(self, tmp_path, monkeypatch):
        trace = self._fresh_trace(tmp_path, monkeypatch)
        cfg = gem5_baseline()
        want = CycleCore(trace, cfg).run().as_dict()
        (sidecar,) = tmp_path.glob("*.streams.npz")
        sidecar.write_bytes(b"not a zip archive")
        trace2 = self._fresh_trace(tmp_path, monkeypatch)
        got = CycleCore(trace2, cfg).run().as_dict()
        assert got == want
        # Quarantined, then rewritten by the recompute.
        assert list(tmp_path.glob("*.streams.npz.corrupt"))
        assert list(tmp_path.glob("*.streams.npz"))
