"""Telemetry: metrics registry, spans, journals, report, /metrics."""

import io
import json
import multiprocessing
import os
import threading
import urllib.request

import pytest

from repro import telemetry
from repro.__main__ import main
from repro.core.runner import Runner
from repro.core.sweeps import l2_sweep
from repro.engine import (JobFailure, Progress, ResultStore, expand_grid,
                          run_jobs)
from repro.telemetry.metrics import MetricsRegistry
from repro.uarch.config import gem5_baseline

_WORKLOADS = ("ar", "co")
_FAST = dict(scale="tiny", budget=4000)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_identity_and_labels():
    r = MetricsRegistry()
    a = r.counter("x_total", help="events", store="a")
    a.inc()
    a.inc(2)
    assert r.counter("x_total", store="a") is a
    assert a.get() == 3
    b = r.counter("x_total", store="b")
    assert b is not a and b.get() == 0


def test_metric_type_conflict_raises():
    r = MetricsRegistry()
    r.counter("m", side="x")
    with pytest.raises(TypeError):
        r.gauge("m", side="x")


def test_gauge_set_callback_and_scrape_safety():
    r = MetricsRegistry()
    g = r.gauge("depth")
    g.set(4)
    g.inc()
    assert g.get() == 5
    live = r.gauge("live", fn=lambda: 7)
    assert live.get() == 7
    # A later caller may rebind the callback (fresh object, same series).
    r.gauge("live", fn=lambda: 9)
    assert live.get() == 9

    def boom():
        raise RuntimeError("scrape must survive")

    assert r.gauge("bad", fn=boom).get() == 0


def test_histogram_buckets_and_snapshot():
    r = MetricsRegistry()
    h = r.histogram("h_seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    snap = h.get()
    assert snap["buckets"] == {0.1: 1, 1.0: 2}
    assert snap["count"] == 3
    assert snap["sum"] == pytest.approx(5.55)


def test_render_prometheus_text():
    r = MetricsRegistry()
    r.counter("req_total", help="requests", verb="get").inc(5)
    r.gauge("queue_depth").set(2)
    r.histogram("lat_seconds", buckets=(0.5,)).observe(0.2)
    r.counter("esc_total", path='quo"te').inc()
    text = r.render_prometheus()
    assert "# HELP req_total requests" in text
    assert "# TYPE req_total counter" in text
    assert 'req_total{verb="get"} 5' in text
    assert "# TYPE queue_depth gauge" in text
    assert "queue_depth 2" in text
    assert 'lat_seconds_bucket{le="0.5"} 1' in text
    assert 'lat_seconds_bucket{le="+Inf"} 1' in text
    assert "lat_seconds_count 1" in text
    assert 'esc_total{path="quo\\"te"} 1' in text
    r.reset()
    assert r.snapshot() == {}


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_nesting_builds_tree(monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    with telemetry.span("job", workload="ar") as root:
        with telemetry.span("a"):
            with telemetry.span("b"):
                pass
        with telemetry.span("c"):
            pass
    assert [c.name for c in root.children] == ["a", "c"]
    assert root.children[0].children[0].name == "b"
    assert root.seconds >= sum(c.seconds for c in root.children)
    d = root.as_dict()
    assert d["name"] == "job" and d["attrs"] == {"workload": "ar"}
    assert [c["name"] for c in d["children"]] == ["a", "c"]
    assert telemetry.current_span() is None


def test_span_kill_switch(monkeypatch):
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    assert not telemetry.enabled()
    with telemetry.span("x") as sp:
        assert sp is None


def test_record_tree_feeds_phase_histograms():
    tree = {"name": "unit-test-phase", "seconds": 0.5,
            "children": [{"name": "unit-test-child", "seconds": 0.25}]}
    telemetry.record_tree(tree)
    telemetry.record_tree(None)  # telemetry-off job: no-op
    h = telemetry.REGISTRY.histogram("repro_span_seconds",
                                     phase="unit-test-phase")
    assert h.count == 1 and h.sum == pytest.approx(0.5)
    child = telemetry.REGISTRY.histogram("repro_span_seconds",
                                         phase="unit-test-child")
    assert child.count == 1


# ----------------------------------------------------------------------
# Progress finish semantics
# ----------------------------------------------------------------------
def test_progress_finish_flushes_pending_line():
    buf = io.StringIO()
    p = Progress(total=0, label="s", stream=buf, min_interval=3600)
    p.step("first")           # first emit always goes through
    p.step("second")          # rate-limited into _pending
    assert "[2/?]" not in buf.getvalue()
    p.finish()
    out = buf.getvalue()
    assert "[1/?] first" in out and "[2/?] second" in out
    p.finish()                # idempotent
    assert buf.getvalue() == out


def test_progress_finish_terminates_cr_line():
    class _Tty(io.StringIO):
        def isatty(self):
            return True

    buf = _Tty()
    p = Progress(total=0, label="s", stream=buf)
    p.step("only")
    assert not buf.getvalue().endswith("\n")
    p.finish()
    assert buf.getvalue().endswith("\n")
    p.finish()
    assert buf.getvalue().count("\n") == 1

    # Known totals self-terminate on the final step; finish adds nothing.
    buf2 = _Tty()
    p2 = Progress(total=2, stream=buf2)
    p2.step("a")
    p2.step("b")
    p2.finish()
    assert buf2.getvalue().endswith("\n")
    assert buf2.getvalue().count("\n") == 1


# ----------------------------------------------------------------------
# Journals
# ----------------------------------------------------------------------
def _journal_env(monkeypatch, directory):
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(directory))


def test_scope_writes_complete_journal(tmp_path, monkeypatch):
    _journal_env(monkeypatch, tmp_path)
    with telemetry.scope("unit", flavor="test") as j:
        assert j is not None
        j.job("ar", "512", "cycle", False, 0.5,
              spans={"name": "job", "seconds": 0.5})
        j.job("co", "512", "cycle", True, 0.001)
        j.batch(1.0, workers=2, store={"root": "/s", "hits": 1, "misses": 1})
        path = j.path
    records = telemetry.read_journal(path)
    assert [r["type"] for r in records] == ["run", "job", "job", "batch",
                                            "summary"]
    assert records[0]["label"] == "unit" and records[0]["flavor"] == "test"
    assert records[1]["spans"]["name"] == "job"
    summary = records[-1]
    assert summary["status"] == "ok"
    assert summary["jobs"] == 2 and summary["hits"] == 1
    assert summary["coverage"] == pytest.approx(0.501, abs=1e-3)
    assert summary["stores"] == [{"root": "/s", "hits": 1, "misses": 1}]


def test_scope_nesting_reuses_active_journal(tmp_path, monkeypatch):
    _journal_env(monkeypatch, tmp_path)
    with telemetry.scope("outer") as outer:
        with telemetry.scope("inner") as inner:
            assert inner is outer
        assert not outer.closed  # inner exit must not close the file
    assert outer.closed
    assert len(list(tmp_path.glob("*.jsonl"))) == 1


def test_scope_marks_error_status(tmp_path, monkeypatch):
    _journal_env(monkeypatch, tmp_path)
    with pytest.raises(RuntimeError):
        with telemetry.scope("boom") as j:
            path = j.path
            raise RuntimeError("crash")
    records = telemetry.read_journal(path)
    assert records[-1]["type"] == "summary"
    assert records[-1]["status"] == "error"


def test_scope_disabled_modes(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_TELEMETRY_DIR", raising=False)
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    with telemetry.scope("no-dir") as j:
        assert j is None
    monkeypatch.setenv("REPRO_TELEMETRY_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_TELEMETRY", "0")
    with telemetry.scope("killed") as j:
        assert j is None
    assert list(tmp_path.glob("*.jsonl")) == []


def test_read_journal_skips_torn_line(tmp_path):
    path = tmp_path / "torn.jsonl"
    path.write_text('{"type": "run", "label": "x"}\n'
                    '{"type": "job", "worklo')  # killed mid-write
    records = telemetry.read_journal(str(path))
    assert len(records) == 1 and records[0]["type"] == "run"


def test_latest_journal_picks_newest(tmp_path):
    old = tmp_path / "a.jsonl"
    new = tmp_path / "b.jsonl"
    old.write_text("{}\n")
    new.write_text("{}\n")
    os.utime(old, (1, 1))
    assert telemetry.latest_journal(str(tmp_path)) == str(new)
    assert telemetry.latest_journal(str(tmp_path / "missing")) is None


# ----------------------------------------------------------------------
# run_jobs journaling under both start methods
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["fork", "spawn"])
def test_run_jobs_journals_under_start_method(tmp_path, monkeypatch, method):
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"{method} start method unavailable")
    jdir = tmp_path / "journals"
    _journal_env(monkeypatch, jdir)
    monkeypatch.setattr("repro.engine.pool._mp_context",
                        lambda: multiprocessing.get_context(method))
    jobs = expand_grid(_WORKLOADS, [(2.0, gem5_baseline(freq_ghz=2.0))],
                       **_FAST)
    run_jobs(jobs, workers=2, runner=Runner(cache_dir=tmp_path / "cache"))

    records = telemetry.read_journal(telemetry.latest_journal(str(jdir)))
    assert records[0]["type"] == "run"
    job_records = [r for r in records if r["type"] == "job"]
    assert len(job_records) == len(jobs)
    for r in job_records:
        # The span tree recorded in the worker travelled back intact.
        assert r["cached"] is False
        assert r["spans"]["name"] == "job"
        assert r["seconds"] > 0
    batch = next(r for r in records if r["type"] == "batch")
    assert batch["workers"] == 2
    assert batch["store"]["misses"] == len(jobs)
    summary = records[-1]
    assert summary["type"] == "summary" and summary["status"] == "ok"
    assert summary["jobs"] == len(jobs) and summary["runs"] == len(jobs)


def test_journal_survives_worker_failure(tmp_path, monkeypatch):
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    jdir = tmp_path / "journals"
    _journal_env(monkeypatch, jdir)
    import repro.uarch as uarch

    def boom(trace, config, model="cycle", **kwargs):
        raise RuntimeError("injected worker failure")

    # Forked workers inherit the patched module, so every attempt of
    # every job raises in the child — the supervised pool retries each
    # job, then quarantines it, and the journal records the whole
    # story while still terminating and parsing.
    monkeypatch.setattr(uarch, "simulate", boom)
    jobs = expand_grid(_WORKLOADS, [(2.0, gem5_baseline(freq_ghz=2.0))],
                       **_FAST)
    results = run_jobs(jobs, workers=2,
                       runner=Runner(cache_dir=tmp_path / "c"))
    assert len(results) == len(jobs)
    for failure in results:
        assert isinstance(failure, JobFailure)
        assert failure.error_type == "RuntimeError"

    records = telemetry.read_journal(telemetry.latest_journal(str(jdir)))
    assert records[0]["type"] == "run"
    assert records[-1]["type"] == "summary"
    assert records[-1]["status"] == "ok"
    assert records[-1]["failures"] == len(jobs)
    assert records[-1]["retries"] > 0
    failure_records = [r for r in records if r["type"] == "failure"]
    assert len(failure_records) == len(jobs)
    assert telemetry.active_journal() is None


def test_report_reproduces_store_hit_counts(tmp_path, monkeypatch):
    jdir = tmp_path / "journals"
    _journal_env(monkeypatch, jdir)
    runner = Runner(cache_dir=tmp_path / "cache")
    kwargs = dict(workloads=_WORKLOADS, sizes_kb=(512,), runner=runner,
                  workers=1, **_FAST)
    l2_sweep(**kwargs)  # cold
    l2_sweep(**kwargs)  # warm: all hits
    n_jobs = len(_WORKLOADS)

    journals = sorted(jdir.glob("*.jsonl"))
    assert len(journals) == 2
    warm = next(p for p in journals
                if telemetry.read_journal(str(p))[-1]["hits"] == n_jobs)
    report = telemetry.build_report(str(warm))
    stats = ResultStore(tmp_path / "cache").stats()
    assert report["totals"]["status"] == "ok"
    assert report["totals"]["hits"] == n_jobs
    assert report["stores"][0]["hits"] == stats["hits"] == n_jobs
    assert report["stores"][0]["misses"] == stats["misses"] == n_jobs
    assert report["tiers"]["cycle"]["cached"] == n_jobs
    # Cached jobs still carry their store-lookup span.
    assert "store:get" in report["phases"]
    text = telemetry.render_report(report)
    assert "phase breakdown" in text and "tier mix" in text


def test_build_report_from_torn_journal(tmp_path):
    path = tmp_path / "torn.jsonl"
    path.write_text(
        '{"type": "run", "label": "x"}\n'
        '{"type": "job", "workload": "ar", "label": "512", '
        '"model": "cycle", "cached": false, "seconds": 1.5, '
        '"spans": {"name": "job", "seconds": 1.5}}\n'
        '{"type": "batch", "wall_s": 2.0, "workers": 1}\n')
    report = telemetry.build_report(str(path))
    assert report["totals"]["status"] == "incomplete"
    assert report["totals"]["jobs"] == 1 and report["totals"]["runs"] == 1
    assert report["totals"]["coverage"] == pytest.approx(0.75)
    assert report["slowest"][0]["seconds"] == 1.5


# ----------------------------------------------------------------------
# Trace-store counter sidecar
# ----------------------------------------------------------------------
def test_trace_store_sidecar_concurrent_bumps(tmp_path):
    from repro.trace.store import TraceStore

    store = TraceStore(root=str(tmp_path), remote=False)
    threads = [threading.Thread(
        target=lambda: [store._bump("remote_hits") for _ in range(25)])
        for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert store.session_counters["remote_hits"] == 200
    # The locked read-modify-write lost no cross-writer updates.
    assert store.persistent_counters()["remote_hits"] == 200
    # A second handle (another process in real life) sees the total.
    assert TraceStore(root=str(tmp_path),
                      remote=False).persistent_counters()["remote_hits"] == 200


def test_trace_store_bump_survives_readonly_root(tmp_path, monkeypatch):
    from repro.trace.store import TraceStore

    store = TraceStore(root=str(tmp_path / "nope"), create=False,
                       remote=False)
    store._bump("quarantined")  # no root on disk: session counter only
    assert store.session_counters["quarantined"] == 1
    assert store.persistent_counters()["quarantined"] == 0


# ----------------------------------------------------------------------
# /metrics + /healthz on the artifact server
# ----------------------------------------------------------------------
@pytest.fixture
def server(tmp_path):
    from repro.store.server import ArtifactServer

    srv = ArtifactServer(root=str(tmp_path / "srv"), host="127.0.0.1",
                         port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _http_get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.read(), resp.headers


def test_healthz_and_metrics_endpoints(server):
    status, body, _ = _http_get(server.url + "/healthz")
    assert status == 200
    assert json.loads(body) == {"ok": True, "service": "repro-store"}

    status, body, headers = _http_get(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    text = body.decode()
    assert "# TYPE repro_server_requests_total counter" in text
    assert "repro_server_artifacts" in text


def test_metrics_under_concurrent_scrapes(server):
    errors = []

    def scrape():
        try:
            for _ in range(5):
                status, body, _ = _http_get(server.url + "/metrics")
                assert status == 200 and b"# TYPE" in body
                status, _, _ = _http_get(server.url + "/healthz")
                assert status == 200
        except Exception as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=scrape) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


def test_server_counts_requests_into_registry(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        _http_get(server.url + "/results/absent-key")
    assert err.value.code == 404
    assert server.counters["misses"] >= 1
    with pytest.raises(urllib.error.HTTPError) as err:
        _http_get(server.url + "/no/such/endpoint/here")
    assert err.value.code == 404
    assert server.counters["errors"] >= 1

    _, body, _ = _http_get(server.url + "/metrics")
    text = body.decode()
    assert ('repro_server_requests_total{namespace="results",'
            'outcome="miss",verb="get"}') in text


# ----------------------------------------------------------------------
# CLI: --json stats and `repro report`
# ----------------------------------------------------------------------
def test_cli_cache_stats_json(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_REMOTE_STORE", raising=False)
    assert main(["cache", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 0
    assert {"hits", "misses", "remote_hits"} <= set(stats)


def test_cli_trace_stats_json(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_REMOTE_STORE", raising=False)
    assert main(["trace", "stats", "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 0
    assert {"remote_hits", "quarantined"} <= set(stats)


def test_cli_report(tmp_path, monkeypatch, capsys):
    _journal_env(monkeypatch, tmp_path)
    with telemetry.scope("cli-run") as j:
        j.job("ar", "512", "cycle", False, 1.25,
              spans={"name": "job", "seconds": 1.25})
        j.batch(2.0, workers=1)

    assert main(["report"]) == 0  # newest journal under the env dir
    out = capsys.readouterr().out
    assert "cli-run" in out and "status=ok" in out

    path = telemetry.latest_journal(str(tmp_path))
    assert main(["report", path, "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["totals"]["jobs"] == 1
    assert report["phases"]["job"]["count"] == 1


def test_cli_report_without_journal(tmp_path, monkeypatch, capsys):
    _journal_env(monkeypatch, tmp_path / "empty")
    assert main(["report"]) == 2
    assert "no journal" in capsys.readouterr().err
