"""Unit tests for the CSR matrix."""

import numpy as np
import pytest

from repro.sparse import COOBuilder, CSRMatrix


def dense_example():
    return np.array(
        [
            [4.0, 1.0, 0.0, 0.0],
            [1.0, 5.0, 2.0, 0.0],
            [0.0, 2.0, 6.0, 3.0],
            [0.0, 0.0, 3.0, 7.0],
        ]
    )


class TestConstruction:
    def test_from_dense_roundtrip(self):
        d = dense_example()
        m = CSRMatrix.from_dense(d)
        assert m.n == 4
        assert m.nnz == 10
        assert np.allclose(m.to_dense(), d)

    def test_from_coo_sums_duplicates(self):
        m = CSRMatrix.from_coo(2, [0, 0, 1], [0, 0, 1], [1.0, 2.0, 5.0])
        assert m.get(0, 0) == 3.0
        assert m.get(1, 1) == 5.0
        assert m.nnz == 2

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CSRMatrix.from_coo(2, [0, 2], [0, 0], [1.0, 1.0])

    def test_identity(self):
        m = CSRMatrix.identity(5)
        assert np.allclose(m.to_dense(), np.eye(5))

    def test_empty_matrix(self):
        m = CSRMatrix.from_coo(3, [], [], [])
        assert m.nnz == 0
        assert np.allclose(m.matvec(np.ones(3)), 0.0)

    def test_indices_sorted_within_rows(self):
        m = CSRMatrix.from_coo(3, [0, 0, 0], [2, 0, 1], [1.0, 2.0, 3.0])
        cols, _ = m.row(0)
        assert list(cols) == [0, 1, 2]

    def test_bad_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSRMatrix(2, [0, 1], [0], [1.0])


class TestKernels:
    def test_matvec_matches_dense(self):
        d = dense_example()
        m = CSRMatrix.from_dense(d)
        x = np.array([1.0, -2.0, 0.5, 3.0])
        assert np.allclose(m.matvec(x), d @ x)

    def test_matvec_with_empty_rows(self):
        m = CSRMatrix.from_coo(4, [0, 3], [1, 2], [2.0, 5.0])
        y = m.matvec(np.array([1.0, 1.0, 1.0, 1.0]))
        assert np.allclose(y, [2.0, 0.0, 0.0, 5.0])

    def test_matvec_rejects_wrong_shape(self):
        m = CSRMatrix.identity(3)
        with pytest.raises(ValueError):
            m.matvec(np.ones(4))

    def test_transpose(self):
        d = np.triu(dense_example())
        m = CSRMatrix.from_dense(d)
        assert np.allclose(m.transpose().to_dense(), d.T)

    def test_diagonal(self):
        m = CSRMatrix.from_dense(dense_example())
        assert np.allclose(m.diagonal(), [4.0, 5.0, 6.0, 7.0])

    def test_get_absent_entry_is_zero(self):
        m = CSRMatrix.from_dense(dense_example())
        assert m.get(0, 3) == 0.0

    def test_scale_rows(self):
        d = dense_example()
        m = CSRMatrix.from_dense(d).scale_rows(np.array([1.0, 2.0, 3.0, 4.0]))
        assert np.allclose(m.to_dense(), np.diag([1, 2, 3, 4]) @ d)

    def test_add_scaled_identity(self):
        d = dense_example()
        m = CSRMatrix.from_dense(d).add_scaled_identity(2.5)
        assert np.allclose(m.to_dense(), d + 2.5 * np.eye(4))

    def test_permuted_congruence(self):
        d = dense_example()
        m = CSRMatrix.from_dense(d)
        perm = np.array([2, 0, 3, 1])
        p = m.permuted(perm)
        # A'[i, j] = A[perm[i], perm[j]] (perm maps new -> old).
        expected = d[np.ix_(perm, perm)]
        assert np.allclose(p.to_dense(), expected)

    def test_structural_symmetry(self):
        assert CSRMatrix.from_dense(dense_example()).is_structurally_symmetric()
        asym = CSRMatrix.from_coo(2, [0], [1], [1.0])
        assert not asym.is_structurally_symmetric()

    def test_row_nnz(self):
        m = CSRMatrix.from_dense(dense_example())
        assert list(m.row_nnz()) == [2, 3, 3, 2]


class TestCOOBuilder:
    def test_add_block(self):
        b = COOBuilder(3)
        b.add_block([0, 1], [0, 1], np.array([[1.0, 2.0], [3.0, 4.0]]))
        m = b.to_csr()
        assert m.get(0, 0) == 1.0
        assert m.get(1, 0) == 3.0

    def test_add_block_drops_negative_indices(self):
        b = COOBuilder(3)
        b.add_block([0, -1], [0, 1], np.array([[1.0, 2.0], [3.0, 4.0]]))
        m = b.to_csr()
        assert m.nnz == 2  # row -1 dropped entirely
        assert m.get(0, 1) == 2.0

    def test_block_shape_mismatch(self):
        b = COOBuilder(3)
        with pytest.raises(ValueError):
            b.add_block([0, 1], [0], np.zeros((2, 2)))

    def test_accumulation_across_blocks(self):
        b = COOBuilder(2)
        for _ in range(3):
            b.add_block([0], [0], np.array([[1.0]]))
        assert b.to_csr().get(0, 0) == 3.0

    def test_negative_dimension_rejected(self):
        with pytest.raises(ValueError):
            COOBuilder(-1)
